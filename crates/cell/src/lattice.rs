//! The global periodic cell lattice with CSR binning.

use crate::{morton_key, AtomStore};
use sc_geom::{IVec3, SimulationBox, Vec3};

/// A periodic cell lattice over a [`SimulationBox`] with compressed
/// sparse-row (CSR) atom bins.
///
/// The lattice chooses the largest cell grid whose cell edges are all
/// ≥ `min_cell_edge` (the n-body cutoff `r_cut-n`), guaranteeing that any two
/// atoms closer than the cutoff sit in the same or nearest-neighbour cells —
/// the induction step of the paper's completeness proof (Lemma 1).
///
/// [`CellLattice::rebuild`] re-bins all atoms in O(N); this is the dynamic
/// part of *dynamic* n-tuple computation — the cell domain Ω is
/// reconstructed every MD step as atoms move (paper §3.1.1).
#[derive(Debug, Clone)]
pub struct CellLattice {
    bbox: SimulationBox,
    dims: IVec3,
    inv_cell: Vec3,
    /// CSR offsets, length `num_cells + 1`.
    starts: Vec<u32>,
    /// Atom slot indices ordered by cell, length N.
    order: Vec<u32>,
    /// `(store.generation(), store.len())` at the last rebuild, or `None` if
    /// never built. Slot indices in `order` are only meaningful against that
    /// exact store state.
    built: Option<(u64, usize)>,
}

impl CellLattice {
    /// Creates a lattice for `bbox` with cell edges ≥ `min_cell_edge`.
    ///
    /// # Panics
    /// Panics unless every axis fits at least 3 cells — fewer would let a
    /// cutoff sphere wrap onto itself and break the minimum-image
    /// convention the enumeration relies on.
    pub fn new(bbox: SimulationBox, min_cell_edge: f64) -> Self {
        assert!(min_cell_edge > 0.0, "cell edge must be positive");
        let l = bbox.lengths();
        let dims = IVec3::new(
            (l.x / min_cell_edge).floor() as i32,
            (l.y / min_cell_edge).floor() as i32,
            (l.z / min_cell_edge).floor() as i32,
        );
        assert!(
            dims.x >= 3 && dims.y >= 3 && dims.z >= 3,
            "box {l:?} with cell edge {min_cell_edge} gives lattice {dims}; need ≥ 3 cells per axis"
        );
        let cell = Vec3::new(l.x / dims.x as f64, l.y / dims.y as f64, l.z / dims.z as f64);
        let inv_cell = Vec3::new(1.0 / cell.x, 1.0 / cell.y, 1.0 / cell.z);
        let ncell = dims.product() as usize;
        CellLattice {
            bbox,
            dims,
            inv_cell,
            starts: vec![0; ncell + 1],
            order: Vec::new(),
            built: None,
        }
    }

    /// Lattice dimensions (cells per axis) — the paper's `(Lx, Ly, Lz)`.
    #[inline]
    pub fn dims(&self) -> IVec3 {
        self.dims
    }

    /// Total number of cells `|L|`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.dims.product() as usize
    }

    /// The simulation box the lattice covers.
    #[inline]
    pub fn bbox(&self) -> &SimulationBox {
        &self.bbox
    }

    /// Cell edge lengths (each ≥ the `min_cell_edge` the lattice was built
    /// with).
    pub fn cell_edges(&self) -> Vec3 {
        let l = self.bbox.lengths();
        Vec3::new(l.x / self.dims.x as f64, l.y / self.dims.y as f64, l.z / self.dims.z as f64)
    }

    /// The cell containing a (wrapped) position.
    #[inline]
    pub fn cell_of(&self, r: Vec3) -> IVec3 {
        let r = self.bbox.wrap(r);
        let q = IVec3::new(
            (r.x * self.inv_cell.x) as i32,
            (r.y * self.inv_cell.y) as i32,
            (r.z * self.inv_cell.z) as i32,
        );
        // Guard against r.x == Lx after floating-point wrap.
        q.min(self.dims - IVec3::splat(1))
    }

    /// Linearized index of a (possibly unwrapped) cell coordinate, applying
    /// the periodic cell-offset operation `q' = q % L`.
    #[inline]
    pub fn cell_index(&self, q: IVec3) -> usize {
        let q = q.rem_euclid(self.dims);
        ((q.x * self.dims.y + q.y) * self.dims.z + q.z) as usize
    }

    /// Rebuilds the bins from the store's current positions (counting sort,
    /// O(N + |L|)).
    pub fn rebuild(&mut self, store: &AtomStore) {
        let n = store.len();
        let ncell = self.num_cells();
        self.starts.clear();
        self.starts.resize(ncell + 1, 0);
        let cells: Vec<u32> =
            store.positions().iter().map(|&r| self.cell_index(self.cell_of(r)) as u32).collect();
        for &c in &cells {
            self.starts[c as usize + 1] += 1;
        }
        for i in 0..ncell {
            self.starts[i + 1] += self.starts[i];
        }
        self.order.clear();
        self.order.resize(n, 0);
        let mut cursor = self.starts.clone();
        for (i, &c) in cells.iter().enumerate() {
            let slot = cursor[c as usize];
            self.order[slot as usize] = i as u32;
            cursor[c as usize] += 1;
        }
        self.built = Some((store.generation(), n));
    }

    /// Whether the bins were built against the store's current slot layout.
    ///
    /// `false` after any structural change — push, swap-remove, truncate, or
    /// a Morton re-sort — at which point the `u32` slots handed out by
    /// [`CellLattice::cell_atoms`] point at the wrong atoms and the lattice
    /// must be rebuilt before use.
    #[inline]
    pub fn is_current(&self, store: &AtomStore) -> bool {
        self.built == Some((store.generation(), store.len()))
    }

    /// The Morton-order permutation of the store's atoms: `perm[new] = old`,
    /// sorted by the Z-order key of each atom's cell, ties broken by the old
    /// slot (stable). Uses only the lattice geometry — the bins need not be
    /// current.
    pub fn morton_permutation(&self, store: &AtomStore) -> Vec<u32> {
        let keys: Vec<u64> =
            store.positions().iter().map(|&r| morton_key(self.cell_of(r))).collect();
        let mut perm: Vec<u32> = (0..store.len() as u32).collect();
        perm.sort_by_key(|&i| keys[i as usize]);
        perm
    }

    /// The atom slots binned into cell `q` (periodic indexing).
    #[inline]
    pub fn cell_atoms(&self, q: IVec3) -> &[u32] {
        let c = self.cell_index(q);
        &self.order[self.starts[c] as usize..self.starts[c + 1] as usize]
    }

    /// Average atoms per cell `⟨ρ_cell⟩` — the density parameter of the
    /// paper's search-cost analysis (Lemma 5).
    pub fn mean_cell_density(&self) -> f64 {
        self.order.len() as f64 / self.num_cells() as f64
    }

    /// Iterates over all cell coordinates of the lattice.
    pub fn cells(&self) -> impl Iterator<Item = IVec3> {
        IVec3::box_iter(IVec3::ZERO, self.dims - IVec3::splat(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Species;

    fn store_with(positions: &[[f64; 3]]) -> AtomStore {
        let mut s = AtomStore::single_species();
        for (i, &p) in positions.iter().enumerate() {
            s.push(i as u64, Species::DEFAULT, Vec3::from_array(p), Vec3::ZERO);
        }
        s
    }

    #[test]
    fn dims_respect_min_edge() {
        let lat = CellLattice::new(SimulationBox::cubic(10.0), 2.5);
        assert_eq!(lat.dims(), IVec3::splat(4));
        let e = lat.cell_edges();
        assert!(e.x >= 2.5 && e.y >= 2.5 && e.z >= 2.5);
        // 10/2.6 = 3.8… → 3 cells of edge 3.33.
        let lat2 = CellLattice::new(SimulationBox::cubic(10.0), 2.6);
        assert_eq!(lat2.dims(), IVec3::splat(3));
        assert!(lat2.cell_edges().x >= 2.6);
    }

    #[test]
    #[should_panic]
    fn too_small_box_rejected() {
        let _ = CellLattice::new(SimulationBox::cubic(5.0), 2.5);
    }

    #[test]
    fn cell_of_maps_positions() {
        let lat = CellLattice::new(SimulationBox::cubic(12.0), 3.0);
        assert_eq!(lat.cell_of(Vec3::new(0.1, 0.1, 0.1)), IVec3::ZERO);
        assert_eq!(lat.cell_of(Vec3::new(11.9, 0.0, 6.0)), IVec3::new(3, 0, 2));
        // Positions outside the box wrap first.
        assert_eq!(lat.cell_of(Vec3::new(-0.1, 12.1, 0.0)), IVec3::new(3, 0, 0));
    }

    #[test]
    fn cell_index_wraps_periodically() {
        let lat = CellLattice::new(SimulationBox::cubic(12.0), 3.0);
        assert_eq!(lat.cell_index(IVec3::new(-1, 0, 0)), lat.cell_index(IVec3::new(3, 0, 0)));
        assert_eq!(lat.cell_index(IVec3::new(4, 4, 4)), lat.cell_index(IVec3::ZERO));
    }

    #[test]
    fn rebuild_bins_every_atom_once() {
        let mut lat = CellLattice::new(SimulationBox::cubic(12.0), 3.0);
        let store = store_with(&[
            [0.5, 0.5, 0.5],
            [0.6, 0.7, 0.8], // same cell as atom 0
            [11.0, 11.0, 11.0],
            [6.0, 6.0, 6.0],
        ]);
        lat.rebuild(&store);
        let mut seen = vec![false; store.len()];
        for q in lat.cells() {
            for &a in lat.cell_atoms(q) {
                assert!(!seen[a as usize], "atom {a} binned twice");
                seen[a as usize] = true;
                // Atom really is in this cell.
                assert_eq!(lat.cell_of(store.positions()[a as usize]), q);
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(lat.cell_atoms(IVec3::ZERO), &[0, 1]);
    }

    #[test]
    fn rebuild_is_repeatable_and_dynamic() {
        let mut lat = CellLattice::new(SimulationBox::cubic(12.0), 3.0);
        let mut store = store_with(&[[0.5, 0.5, 0.5]]);
        lat.rebuild(&store);
        assert_eq!(lat.cell_atoms(IVec3::ZERO).len(), 1);
        // Atom moves to another cell; rebuild tracks it.
        store.positions_mut()[0] = Vec3::new(6.0, 6.0, 6.0);
        lat.rebuild(&store);
        assert_eq!(lat.cell_atoms(IVec3::ZERO).len(), 0);
        assert_eq!(lat.cell_atoms(IVec3::splat(2)).len(), 1);
    }

    #[test]
    fn mean_density() {
        let mut lat = CellLattice::new(SimulationBox::cubic(12.0), 3.0);
        let store = store_with([[0.0; 3]; 5].as_slice());
        lat.rebuild(&store);
        assert!((lat.mean_cell_density() - 5.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_position_does_not_overflow() {
        let lat = CellLattice::new(SimulationBox::cubic(9.0), 3.0);
        // A position that wraps to exactly 0.0 or lands on the box edge must
        // still map to a valid cell.
        let q = lat.cell_of(Vec3::new(9.0 - 1e-16, 0.0, 0.0));
        assert!(q.x < 3);
    }
}
