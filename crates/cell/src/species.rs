//! Compact species identifiers.

use serde::{Deserialize, Serialize};

/// A chemical species id — an index into the per-species parameter tables of
/// the potentials and the mass table of the [`crate::AtomStore`].
///
/// Species are deliberately a thin `u8` newtype: the enumeration hot loops
/// carry one per atom, and potentials index `n_species × n_species` parameter
/// matrices with them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Species(pub u8);

impl Species {
    /// Species 0 — used for single-species systems (e.g. Lennard-Jones
    /// argon, Stillinger-Weber silicon).
    pub const DEFAULT: Species = Species(0);
    /// Silicon in the silica benchmark system.
    pub const SI: Species = Species(0);
    /// Oxygen in the silica benchmark system.
    pub const O: Species = Species(1);

    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u8> for Species {
    fn from(v: u8) -> Self {
        Species(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices() {
        assert_eq!(Species::SI.index(), 0);
        assert_eq!(Species::O.index(), 1);
        assert_eq!(Species::from(3).index(), 3);
        assert_eq!(Species::DEFAULT, Species(0));
    }
}
