//! Structure-of-arrays atom storage.

use crate::{CellLattice, Species};
use sc_geom::{SimulationBox, Vec3};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Structure-of-arrays storage for an N-atom system.
///
/// Positions, velocities, forces, species, and stable global ids live in
/// parallel arrays; the enumeration and force loops index them by the `u32`
/// slot index the cell bins hand out. Global ids survive migration between
/// ranks and let distributed and serial trajectories be compared atom by
/// atom.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AtomStore {
    ids: Vec<u64>,
    species: Vec<Species>,
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    forces: Vec<Vec3>,
    /// Mass per species index.
    species_masses: Vec<f64>,
    /// Structural generation: bumped whenever slot↔atom assignments change
    /// (push, swap_remove, truncate, permutation). Cell lattices record the
    /// generation they were built against so stale slot indices are caught
    /// instead of silently pointing at the wrong atom.
    generation: u64,
}

impl AtomStore {
    /// Creates an empty store with the given per-species masses
    /// (`species_masses[s]` is the mass of species `s`).
    pub fn new(species_masses: Vec<f64>) -> Self {
        assert!(!species_masses.is_empty(), "need at least one species mass");
        assert!(
            species_masses.iter().all(|&m| m > 0.0 && m.is_finite()),
            "species masses must be positive and finite"
        );
        AtomStore { species_masses, ..Default::default() }
    }

    /// Creates an empty single-species store with unit mass (reduced units).
    pub fn single_species() -> Self {
        AtomStore::new(vec![1.0])
    }

    /// Adds an atom; returns its slot index.
    pub fn push(&mut self, id: u64, species: Species, position: Vec3, velocity: Vec3) -> u32 {
        assert!(
            species.index() < self.species_masses.len(),
            "species {species:?} has no mass entry"
        );
        let idx = self.ids.len() as u32;
        self.ids.push(id);
        self.species.push(species);
        self.positions.push(position);
        self.velocities.push(velocity);
        self.forces.push(Vec3::ZERO);
        self.generation += 1;
        idx
    }

    /// Structural generation counter. Any operation that changes which atom
    /// occupies which slot (push, [`AtomStore::swap_remove`],
    /// [`AtomStore::truncate`], [`AtomStore::apply_permutation`]) bumps it;
    /// lattices record the generation they were built against (see
    /// [`CellLattice::is_current`]) so stale slot indices can be detected.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of atoms.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store holds no atoms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Stable global ids.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Species per atom.
    #[inline]
    pub fn species(&self) -> &[Species] {
        &self.species
    }

    /// Positions.
    #[inline]
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Mutable positions.
    #[inline]
    pub fn positions_mut(&mut self) -> &mut [Vec3] {
        &mut self.positions
    }

    /// Velocities.
    #[inline]
    pub fn velocities(&self) -> &[Vec3] {
        &self.velocities
    }

    /// Mutable velocities.
    #[inline]
    pub fn velocities_mut(&mut self) -> &mut [Vec3] {
        &mut self.velocities
    }

    /// Forces accumulated for the current step.
    #[inline]
    pub fn forces(&self) -> &[Vec3] {
        &self.forces
    }

    /// Mutable forces.
    #[inline]
    pub fn forces_mut(&mut self) -> &mut [Vec3] {
        &mut self.forces
    }

    /// Mass of atom `i`.
    #[inline]
    pub fn mass(&self, i: u32) -> f64 {
        self.species_masses[self.species[i as usize].index()]
    }

    /// The per-species mass table.
    #[inline]
    pub fn species_masses(&self) -> &[f64] {
        &self.species_masses
    }

    /// Zeroes the force accumulators (start of every step).
    pub fn zero_forces(&mut self) {
        self.forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
    }

    /// Wraps every position into the primary image of `bbox`.
    pub fn wrap_positions(&mut self, bbox: &SimulationBox) {
        for r in &mut self.positions {
            *r = bbox.wrap(*r);
        }
    }

    /// Total kinetic energy `Σ ½ m v²`.
    pub fn kinetic_energy(&self) -> f64 {
        self.velocities
            .iter()
            .zip(&self.species)
            .map(|(v, s)| 0.5 * self.species_masses[s.index()] * v.norm_sq())
            .sum()
    }

    /// Instantaneous temperature in energy units (k_B = 1):
    /// `T = 2 E_kin / (3 N)`.
    pub fn temperature(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.kinetic_energy() / (3.0 * self.len() as f64)
    }

    /// Net momentum `Σ m v` — conserved by Newton's-third-law-respecting
    /// force evaluation, hence a cheap correctness probe.
    pub fn net_momentum(&self) -> Vec3 {
        self.velocities
            .iter()
            .zip(&self.species)
            .map(|(v, s)| *v * self.species_masses[s.index()])
            .sum()
    }

    /// Net force `Σ f` — must vanish for any translation-invariant potential.
    pub fn net_force(&self) -> Vec3 {
        self.forces.iter().copied().sum()
    }

    /// Removes the centre-of-mass velocity so the system has zero net
    /// momentum (standard MD initialization hygiene).
    pub fn remove_drift(&mut self) {
        if self.is_empty() {
            return;
        }
        let total_mass: f64 = self.species.iter().map(|s| self.species_masses[s.index()]).sum();
        let v_cm = self.net_momentum() / total_mass;
        for v in &mut self.velocities {
            *v -= v_cm;
        }
    }

    /// Rescales velocities to the target temperature (velocity-rescaling
    /// thermostat / initialization).
    pub fn rescale_to_temperature(&mut self, target: f64) {
        let t = self.temperature();
        if t <= 0.0 {
            return;
        }
        let s = (target / t).sqrt();
        for v in &mut self.velocities {
            *v *= s;
        }
    }

    /// Removes atom at slot `i` by swap-remove, returning its
    /// `(id, species, position, velocity)`. Used by migration. The last
    /// atom takes slot `i`; bins must be rebuilt afterwards.
    pub fn swap_remove(&mut self, i: u32) -> (u64, Species, Vec3, Vec3) {
        let i = i as usize;
        let id = self.ids.swap_remove(i);
        let sp = self.species.swap_remove(i);
        let r = self.positions.swap_remove(i);
        let v = self.velocities.swap_remove(i);
        self.forces.swap_remove(i);
        self.generation += 1;
        (id, sp, r, v)
    }

    /// Truncates the store to `n` atoms — used to drop ghost atoms appended
    /// after the owned ones.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len() {
            return;
        }
        self.ids.truncate(n);
        self.species.truncate(n);
        self.positions.truncate(n);
        self.velocities.truncate(n);
        self.forces.truncate(n);
        self.generation += 1;
    }

    /// Reorders all per-atom arrays so that new slot `k` holds the atom that
    /// was at slot `perm[k]`. `perm` must be a permutation of `0..len`.
    ///
    /// Ids travel with their atoms, so anything keyed by *id* (checkpoints,
    /// telemetry, ghost import) is unaffected; anything holding *slot*
    /// indices (cell bins, neighbor caches) must be rebuilt — the generation
    /// bump makes that detectable.
    pub fn apply_permutation(&mut self, perm: &[u32]) {
        let n = self.len();
        assert_eq!(perm.len(), n, "permutation length {} != atom count {n}", perm.len());
        debug_assert!(
            {
                let mut seen = vec![false; n];
                perm.iter().all(|&p| {
                    let fresh = (p as usize) < n && !seen[p as usize];
                    if fresh {
                        seen[p as usize] = true;
                    }
                    fresh
                })
            },
            "perm is not a permutation of 0..{n}"
        );
        fn permute<T: Copy>(dst: &mut Vec<T>, perm: &[u32], scratch: &mut Vec<T>) {
            scratch.clear();
            scratch.extend(perm.iter().map(|&p| dst[p as usize]));
            std::mem::swap(dst, scratch);
        }
        let mut scratch_v = Vec::with_capacity(n);
        permute(&mut self.positions, perm, &mut scratch_v);
        permute(&mut self.velocities, perm, &mut scratch_v);
        permute(&mut self.forces, perm, &mut scratch_v);
        let mut scratch_id = Vec::with_capacity(n);
        permute(&mut self.ids, perm, &mut scratch_id);
        let mut scratch_sp = Vec::with_capacity(n);
        permute(&mut self.species, perm, &mut scratch_sp);
        self.generation += 1;
    }

    /// Sorts the atoms along the Morton (Z-order) curve of `lat`'s cells and
    /// returns the applied permutation (`perm[new_slot] = old_slot`).
    ///
    /// Atoms within the same cell keep their relative order (the sort is
    /// stable), so repeating the sort on unchanged positions is the identity
    /// permutation. The lattice does **not** need to be rebuilt beforehand —
    /// only its geometry is used — but every lattice must be rebuilt *after*
    /// the sort, since slot indices change.
    pub fn sort_by_cell(&mut self, lat: &CellLattice) -> Vec<u32> {
        let perm = lat.morton_permutation(self);
        self.apply_permutation(&perm);
        perm
    }

    /// Sorts atoms by ascending global id and returns the applied
    /// permutation. Restores the canonical order gathered snapshots and
    /// cross-run comparisons use.
    pub fn sort_by_id(&mut self) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..self.len() as u32).collect();
        perm.sort_by_key(|&i| self.ids[i as usize]);
        self.apply_permutation(&perm);
        perm
    }

    /// Builds the stable `id → slot` map for the current layout. Invalidated
    /// by any generation bump; callers that cache it should key the cache on
    /// [`AtomStore::generation`].
    pub fn id_index(&self) -> HashMap<u64, u32> {
        self.ids.iter().enumerate().map(|(slot, &id)| (id, slot as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_atom_store() -> AtomStore {
        let mut s = AtomStore::new(vec![1.0, 16.0]);
        s.push(0, Species(0), Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        s.push(1, Species(1), Vec3::new(1.0, 1.0, 1.0), Vec3::new(0.0, -1.0, 0.0));
        s
    }

    #[test]
    fn push_and_access() {
        let s = two_atom_store();
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids(), &[0, 1]);
        assert_eq!(s.mass(0), 1.0);
        assert_eq!(s.mass(1), 16.0);
    }

    #[test]
    fn kinetic_energy_and_temperature() {
        let s = two_atom_store();
        // ½·1·1 + ½·16·1 = 8.5
        assert!((s.kinetic_energy() - 8.5).abs() < 1e-12);
        assert!((s.temperature() - 2.0 * 8.5 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn momentum_and_drift_removal() {
        let mut s = two_atom_store();
        let p = s.net_momentum();
        assert!((p - Vec3::new(1.0, -16.0, 0.0)).norm() < 1e-12);
        s.remove_drift();
        assert!(s.net_momentum().norm() < 1e-12);
    }

    #[test]
    fn rescale_hits_target_temperature() {
        let mut s = two_atom_store();
        s.rescale_to_temperature(1.5);
        assert!((s.temperature() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_forces() {
        let mut s = two_atom_store();
        s.forces_mut()[0] = Vec3::new(1.0, 2.0, 3.0);
        s.zero_forces();
        assert_eq!(s.forces()[0], Vec3::ZERO);
    }

    #[test]
    fn swap_remove_and_truncate() {
        let mut s = two_atom_store();
        s.push(2, Species(0), Vec3::splat(2.0), Vec3::ZERO);
        let (id, ..) = s.swap_remove(0);
        assert_eq!(id, 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids()[0], 2); // last atom swapped into slot 0
        s.truncate(1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn wrap_positions() {
        let mut s = AtomStore::single_species();
        s.push(0, Species::DEFAULT, Vec3::new(-0.5, 10.5, 3.0), Vec3::ZERO);
        s.wrap_positions(&SimulationBox::cubic(10.0));
        let r = s.positions()[0];
        assert!((r.x - 9.5).abs() < 1e-12);
        assert!((r.y - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn unknown_species_rejected() {
        let mut s = AtomStore::single_species();
        s.push(0, Species(5), Vec3::ZERO, Vec3::ZERO);
    }

    #[test]
    fn wrap_positions_clamps_boundary_straddlers() {
        let mut s = AtomStore::single_species();
        // Each of these wraps to exactly L without the [0, L) clamp.
        s.push(0, Species::DEFAULT, Vec3::new(-1e-17, 0.0, 0.0), Vec3::ZERO);
        s.push(1, Species::DEFAULT, Vec3::new(20.0f64.next_down(), -1e-300, 10.0), Vec3::ZERO);
        let bbox = SimulationBox::cubic(10.0);
        s.wrap_positions(&bbox);
        for &r in s.positions() {
            assert!(bbox.contains(r), "wrapped position {r:?} escaped [0, L)");
        }
        // And the binning guard downstream: slot into a valid cell.
        let mut lat = CellLattice::new(bbox, 2.5);
        lat.rebuild(&s);
        assert!(lat.is_current(&s));
    }

    #[test]
    fn generation_tracks_structural_changes() {
        let mut s = two_atom_store();
        let g0 = s.generation();
        s.zero_forces();
        s.positions_mut()[0] = Vec3::splat(0.5);
        assert_eq!(s.generation(), g0, "non-structural ops must not bump");
        s.push(7, Species(0), Vec3::ZERO, Vec3::ZERO);
        assert!(s.generation() > g0);
        let g1 = s.generation();
        s.swap_remove(0);
        assert!(s.generation() > g1);
        let g2 = s.generation();
        s.truncate(s.len()); // no-op truncate
        assert_eq!(s.generation(), g2);
        s.truncate(1);
        assert!(s.generation() > g2);
    }

    #[test]
    fn apply_permutation_carries_all_arrays() {
        let mut s = two_atom_store();
        s.forces_mut()[0] = Vec3::new(1.0, 2.0, 3.0);
        s.apply_permutation(&[1, 0]);
        assert_eq!(s.ids(), &[1, 0]);
        assert_eq!(s.species()[0], Species(1));
        assert_eq!(s.positions()[0], Vec3::splat(1.0));
        assert_eq!(s.velocities()[0], Vec3::new(0.0, -1.0, 0.0));
        assert_eq!(s.forces()[1], Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(s.mass(0), 16.0);
    }

    #[test]
    #[should_panic]
    fn apply_permutation_rejects_wrong_length() {
        let mut s = two_atom_store();
        s.apply_permutation(&[0]);
    }

    #[test]
    fn sort_by_cell_is_stable_and_idempotent() {
        let bbox = SimulationBox::cubic(12.0);
        let lat = CellLattice::new(bbox, 3.0);
        let mut s = AtomStore::single_species();
        // Two atoms in cell (2,2,2), two in (0,0,0), insertion order mixed.
        s.push(10, Species::DEFAULT, Vec3::splat(7.0), Vec3::ZERO);
        s.push(11, Species::DEFAULT, Vec3::splat(0.5), Vec3::ZERO);
        s.push(12, Species::DEFAULT, Vec3::splat(7.5), Vec3::ZERO);
        s.push(13, Species::DEFAULT, Vec3::splat(0.6), Vec3::ZERO);
        let perm = s.sort_by_cell(&lat);
        assert_eq!(perm, vec![1, 3, 0, 2]);
        // Cell (0,0,0) first, insertion order preserved within each cell.
        assert_eq!(s.ids(), &[11, 13, 10, 12]);
        // Re-sorting sorted data is the identity.
        let perm2 = s.sort_by_cell(&lat);
        assert_eq!(perm2, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sort_by_id_restores_canonical_order() {
        let mut s = two_atom_store();
        s.push(5, Species(0), Vec3::splat(2.0), Vec3::ZERO);
        s.apply_permutation(&[2, 0, 1]);
        assert_eq!(s.ids(), &[5, 0, 1]);
        s.sort_by_id();
        assert_eq!(s.ids(), &[0, 1, 5]);
        let idx = s.id_index();
        assert_eq!(idx[&5], 2);
        assert_eq!(idx[&0], 0);
    }
}
