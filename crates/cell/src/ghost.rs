//! Rank-local cell lattice with ghost margins.

use crate::{morton_key, AtomStore};
use sc_geom::{CellRegion, IVec3, Vec3};

/// A rank-local cell lattice: an owned region of cells plus ghost margins
/// holding atoms imported from neighbour ranks.
///
/// Unlike [`crate::CellLattice`], indexing here is **non-periodic**: local
/// cell coordinates run over `[-lo_margin, owned_extent + hi_margin)` per
/// axis, and positions are expressed in the rank's contiguous local frame
/// (the communication layer shifts periodic images *before* handing ghosts
/// over, so geometry near the global boundary stays continuous).
///
/// Which margins are non-zero encodes the communication scheme:
/// * shift-collapse / eighth-shell: `lo = 0`, `hi = n−1` (first-octant
///   import, Eq. 33);
/// * full shell: `lo = hi = n−1`;
/// * half shell: mixed, per §4.3.2.
#[derive(Debug, Clone)]
pub struct GhostLattice {
    origin: Vec3,
    cell: Vec3,
    inv_cell: Vec3,
    owned_extent: IVec3,
    lo_margin: IVec3,
    hi_margin: IVec3,
    starts: Vec<u32>,
    order: Vec<u32>,
    owned_atoms: usize,
    /// `(store.generation(), store.len())` at the last rebuild (see
    /// [`crate::CellLattice::is_current`]).
    built: Option<(u64, usize)>,
}

impl GhostLattice {
    /// Creates a local lattice.
    ///
    /// * `origin` — real-space coordinate of the owned region's low corner.
    /// * `cell` — cell edge lengths (≥ cutoff).
    /// * `owned_extent` — owned cells per axis (≥ 1).
    /// * `lo_margin`, `hi_margin` — ghost cells below/above per axis (≥ 0).
    pub fn new(
        origin: Vec3,
        cell: Vec3,
        owned_extent: IVec3,
        lo_margin: IVec3,
        hi_margin: IVec3,
    ) -> Self {
        assert!(owned_extent.x >= 1 && owned_extent.y >= 1 && owned_extent.z >= 1);
        assert!(lo_margin.in_first_octant() && hi_margin.in_first_octant());
        assert!(cell.x > 0.0 && cell.y > 0.0 && cell.z > 0.0);
        let total = owned_extent + lo_margin + hi_margin;
        let ncell = total.product() as usize;
        GhostLattice {
            origin,
            cell,
            inv_cell: Vec3::new(1.0 / cell.x, 1.0 / cell.y, 1.0 / cell.z),
            owned_extent,
            lo_margin,
            hi_margin,
            starts: vec![0; ncell + 1],
            order: Vec::new(),
            owned_atoms: 0,
            built: None,
        }
    }

    /// The extended local region `[-lo_margin, owned_extent + hi_margin)`.
    pub fn extended_region(&self) -> CellRegion {
        CellRegion::new(-self.lo_margin, self.owned_extent + self.hi_margin)
    }

    /// The owned region `[0, owned_extent)`.
    pub fn owned_region(&self) -> CellRegion {
        CellRegion::new(IVec3::ZERO, self.owned_extent)
    }

    /// Owned cells per axis.
    #[inline]
    pub fn owned_extent(&self) -> IVec3 {
        self.owned_extent
    }

    /// Cell edge lengths.
    #[inline]
    pub fn cell_edges(&self) -> Vec3 {
        self.cell
    }

    /// Real-space low corner of the owned region.
    #[inline]
    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    /// Number of atoms binned as owned (slots `0..owned_atoms`).
    #[inline]
    pub fn owned_atoms(&self) -> usize {
        self.owned_atoms
    }

    /// The local cell containing a local-frame position (may be a ghost
    /// cell, or out of range for an atom that needs migration).
    #[inline]
    pub fn local_cell_of(&self, r: Vec3) -> IVec3 {
        let d = r - self.origin;
        IVec3::new(
            (d.x * self.inv_cell.x).floor() as i32,
            (d.y * self.inv_cell.y).floor() as i32,
            (d.z * self.inv_cell.z).floor() as i32,
        )
    }

    /// Whether a local-frame position lies in the owned region (decides
    /// migration).
    pub fn owns(&self, r: Vec3) -> bool {
        self.owned_region().contains(self.local_cell_of(r))
    }

    /// Linear index of a local cell coordinate.
    ///
    /// # Panics
    /// Panics if `q` is outside the extended region (no periphery wrapping —
    /// ghosts must have been imported).
    #[inline]
    pub fn cell_index(&self, q: IVec3) -> usize {
        let t = q + self.lo_margin;
        let total = self.owned_extent + self.lo_margin + self.hi_margin;
        assert!(
            t.in_first_octant() && t.x < total.x && t.y < total.y && t.z < total.z,
            "local cell {q} outside extended region"
        );
        ((t.x * total.y + t.y) * total.z + t.z) as usize
    }

    /// Rebuilds the bins. Atoms `0..owned_count` of the store are owned;
    /// the rest are ghosts. Atoms whose cell falls outside the extended
    /// region are skipped (they are awaiting migration).
    pub fn rebuild(&mut self, store: &AtomStore, owned_count: usize) {
        self.owned_atoms = owned_count;
        let ncell = self.starts.len() - 1;
        self.starts.clear();
        self.starts.resize(ncell + 1, 0);
        let region = self.extended_region();
        let cells: Vec<Option<u32>> = store
            .positions()
            .iter()
            .map(|&r| {
                let q = self.local_cell_of(r);
                region.contains(q).then(|| self.cell_index(q) as u32)
            })
            .collect();
        for c in cells.iter().flatten() {
            self.starts[*c as usize + 1] += 1;
        }
        for i in 0..ncell {
            self.starts[i + 1] += self.starts[i];
        }
        self.order.clear();
        self.order.resize(cells.iter().flatten().count(), 0);
        let mut cursor = self.starts.clone();
        for (i, c) in cells.iter().enumerate() {
            if let Some(c) = c {
                let slot = cursor[*c as usize];
                self.order[slot as usize] = i as u32;
                cursor[*c as usize] += 1;
            }
        }
        self.built = Some((store.generation(), store.len()));
    }

    /// Whether the bins were built against the store's current slot layout
    /// (see [`crate::CellLattice::is_current`]).
    #[inline]
    pub fn is_current(&self, store: &AtomStore) -> bool {
        self.built == Some((store.generation(), store.len()))
    }

    /// Morton-order permutation of the store's first `owned` atoms, keyed by
    /// the Z-order of their local cells: `perm[new] = old`, stable within a
    /// cell. Atoms outside the extended region (awaiting migration) are
    /// clamped onto its boundary for key purposes — the sort only needs a
    /// locality heuristic for them, not an exact bin.
    ///
    /// Must be applied while the store is ghost-free (`store.len() == owned`);
    /// permuting the owned prefix under appended ghosts would desynchronize
    /// ghost provenance tables.
    pub fn morton_permutation(&self, store: &AtomStore, owned: usize) -> Vec<u32> {
        let total = self.owned_extent + self.lo_margin + self.hi_margin;
        let keys: Vec<u64> = store.positions()[..owned]
            .iter()
            .map(|&r| {
                let q = self.local_cell_of(r) + self.lo_margin;
                let clamped = q.max(IVec3::ZERO).min(total - IVec3::splat(1));
                morton_key(clamped)
            })
            .collect();
        let mut perm: Vec<u32> = (0..owned as u32).collect();
        perm.sort_by_key(|&i| keys[i as usize]);
        perm
    }

    /// The atom slots binned into local cell `q`.
    #[inline]
    pub fn cell_atoms(&self, q: IVec3) -> &[u32] {
        let c = self.cell_index(q);
        &self.order[self.starts[c] as usize..self.starts[c + 1] as usize]
    }

    /// Like [`GhostLattice::cell_atoms`] but returns an empty slice for
    /// cells outside the extended region — enumeration sweeps may step off
    /// the local lattice, where there are simply no local atoms.
    #[inline]
    pub fn cell_atoms_or_empty(&self, q: IVec3) -> &[u32] {
        if self.extended_region().contains(q) {
            self.cell_atoms(q)
        } else {
            &[]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Species;

    fn lat() -> GhostLattice {
        // Owned region: 2×2×2 cells of edge 3 starting at (6, 6, 6),
        // SC-style margins: none below, two above.
        GhostLattice::new(
            Vec3::splat(6.0),
            Vec3::splat(3.0),
            IVec3::splat(2),
            IVec3::ZERO,
            IVec3::splat(2),
        )
    }

    #[test]
    fn regions() {
        let l = lat();
        assert_eq!(l.owned_region(), CellRegion::new(IVec3::ZERO, IVec3::splat(2)));
        assert_eq!(l.extended_region(), CellRegion::new(IVec3::ZERO, IVec3::splat(4)));
        assert_eq!(l.extended_region().cell_count(), 64);
    }

    #[test]
    fn local_cells_and_ownership() {
        let l = lat();
        assert_eq!(l.local_cell_of(Vec3::splat(6.5)), IVec3::ZERO);
        assert_eq!(l.local_cell_of(Vec3::splat(11.9)), IVec3::splat(1));
        // Ghost region above.
        assert_eq!(l.local_cell_of(Vec3::splat(12.1)), IVec3::splat(2));
        assert!(l.owns(Vec3::splat(6.5)));
        assert!(!l.owns(Vec3::splat(12.1)));
        // Below the owned region → negative local cell (needs migration).
        assert_eq!(l.local_cell_of(Vec3::splat(5.9)).x, -1);
        assert!(!l.owns(Vec3::splat(5.9)));
    }

    #[test]
    fn rebuild_separates_owned_and_ghosts() {
        let l0 = lat();
        let mut store = AtomStore::single_species();
        store.push(0, Species::DEFAULT, Vec3::splat(6.5), Vec3::ZERO); // owned
        store.push(1, Species::DEFAULT, Vec3::splat(9.5), Vec3::ZERO); // owned
        store.push(2, Species::DEFAULT, Vec3::splat(12.5), Vec3::ZERO); // ghost
        let mut l = l0.clone();
        l.rebuild(&store, 2);
        assert_eq!(l.owned_atoms(), 2);
        assert_eq!(l.cell_atoms(IVec3::ZERO), &[0]);
        assert_eq!(l.cell_atoms(IVec3::splat(1)), &[1]);
        assert_eq!(l.cell_atoms(IVec3::splat(2)), &[2]);
    }

    #[test]
    fn out_of_range_atoms_are_skipped() {
        let mut store = AtomStore::single_species();
        store.push(0, Species::DEFAULT, Vec3::splat(0.0), Vec3::ZERO); // far below
        store.push(1, Species::DEFAULT, Vec3::splat(7.0), Vec3::ZERO); // owned
        let mut l = lat();
        l.rebuild(&store, 2);
        // Atom 0 is not binned anywhere; atom 1 is.
        let total: usize = l.extended_region().iter().map(|q| l.cell_atoms(q).len()).sum();
        assert_eq!(total, 1);
    }

    #[test]
    #[should_panic]
    fn out_of_region_cell_index_panics() {
        let l = lat();
        let _ = l.cell_index(IVec3::splat(4));
    }
}
