//! # sc-cell — atom storage and the linked-cell data structure
//!
//! The cell method (paper §2.2, §3.1.1) is the substrate every pattern-based
//! n-tuple search runs on: the periodic simulation volume is divided into a
//! lattice of cells with edge ≥ the interaction cutoff, so that every
//! chain-cutoff n-tuple lives on a nearest-neighbour cell chain.
//!
//! * [`AtomStore`] — structure-of-arrays storage for atom ids, species,
//!   positions, velocities, and forces, with the bulk thermodynamic
//!   observables MD needs (kinetic energy, temperature, net momentum).
//! * [`CellLattice`] — the global periodic cell lattice with CSR binning:
//!   `O(N)` rebuild per step, contiguous `&[u32]` atom slices per cell.
//! * [`GhostLattice`] — a rank-local lattice over an owned cell region plus
//!   ghost margins, used by the distributed runtime: owned atoms first,
//!   imported ghosts appended, non-periodic local indexing.
//! * [`Species`] — a compact species id with per-species mass lookup.
//! * [`morton_key`] — Z-order keys for cell coordinates; backs the
//!   data-sorted atom layout (`AtomStore::sort_by_cell`) that keeps cell
//!   neighbours adjacent in memory for the batched distance kernels.

#![warn(missing_docs)]

mod ghost;
mod lattice;
mod morton;
mod species;
mod store;

pub use ghost::GhostLattice;
pub use lattice::CellLattice;
pub use morton::morton_key;
pub use species::Species;
pub use store::AtomStore;
