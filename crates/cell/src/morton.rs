//! Morton (Z-order) keys for cell coordinates.
//!
//! Sorting atoms by the Morton key of their cell turns cell-neighbourhood
//! locality into memory locality: the Z-order curve keeps the 3×3×3 (and the
//! paper's shift-collapse first-octant) stencils of a cell within a short,
//! mostly contiguous span of the SoA arrays. This is the data-sorted layout
//! prerequisite for the batched distance kernels in `sc-md` — gathering a
//! cell's positions into contiguous lanes is only a cache win if the source
//! slots are already near each other.

use sc_geom::IVec3;

/// Spreads the low 21 bits of `v` so that bit `i` lands at bit `3i`.
#[inline]
const fn spread3(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff;
    x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x001f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Morton (Z-order) key of a first-octant cell coordinate: the bits of
/// `q.x`, `q.y`, `q.z` interleaved, 21 bits per axis.
///
/// Coordinates must be non-negative and below 2²¹ (any realistic cell
/// lattice is orders of magnitude smaller).
#[inline]
pub fn morton_key(q: IVec3) -> u64 {
    debug_assert!(
        q.in_first_octant() && q.x < (1 << 21) && q.y < (1 << 21) && q.z < (1 << 21),
        "cell coordinate {q} outside Morton domain"
    );
    spread3(q.x as u64) | (spread3(q.y as u64) << 1) | (spread3(q.z as u64) << 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_bit_interleave() {
        assert_eq!(morton_key(IVec3::ZERO), 0);
        assert_eq!(morton_key(IVec3::new(1, 0, 0)), 0b001);
        assert_eq!(morton_key(IVec3::new(0, 1, 0)), 0b010);
        assert_eq!(morton_key(IVec3::new(0, 0, 1)), 0b100);
        assert_eq!(morton_key(IVec3::new(1, 1, 1)), 0b111);
        assert_eq!(morton_key(IVec3::new(2, 0, 3)), 0b101_100);
    }

    #[test]
    fn key_orders_locally() {
        // The 2×2×2 block at the origin precedes everything at (2,0,0)+.
        let block: Vec<u64> =
            IVec3::box_iter(IVec3::ZERO, IVec3::splat(1)).map(morton_key).collect();
        assert!(block.iter().all(|&k| k < morton_key(IVec3::new(2, 0, 0))));
    }

    #[test]
    fn key_is_injective_on_a_small_box() {
        let mut keys: Vec<u64> =
            IVec3::box_iter(IVec3::ZERO, IVec3::splat(7)).map(morton_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 512);
    }

    #[test]
    fn key_handles_large_coordinates() {
        let max = (1 << 21) - 1;
        assert_eq!(morton_key(IVec3::new(max, max, max)).count_ones(), 63);
    }
}
