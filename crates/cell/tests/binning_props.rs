//! Property-based tests of the cell data structures: binning must be a
//! partition, ghost lattices must respect their regions, and the store's
//! bulk observables must obey their algebraic identities.

use proptest::prelude::*;
use sc_cell::{AtomStore, CellLattice, GhostLattice, Species};
use sc_geom::{IVec3, SimulationBox, Vec3};

fn store_strategy() -> impl Strategy<Value = (AtomStore, SimulationBox)> {
    (
        4.0f64..12.0,
        proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, -1.0f64..1.0), 1..80),
    )
        .prop_map(|(l, rows)| {
            let bbox = SimulationBox::cubic(l);
            let mut store = AtomStore::single_species();
            for (i, &(x, y, z, v)) in rows.iter().enumerate() {
                store.push(
                    i as u64,
                    Species::DEFAULT,
                    Vec3::new(x * l, y * l, z * l),
                    Vec3::new(v, -v, 0.5 * v),
                );
            }
            (store, bbox)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binning is a partition: every atom in exactly one cell, and in the
    /// cell its position maps to.
    #[test]
    fn binning_is_a_partition((store, bbox) in store_strategy(), rcut in 1.0f64..2.5) {
        prop_assume!(bbox.lengths().x / rcut >= 3.0);
        let mut lat = CellLattice::new(bbox, rcut);
        lat.rebuild(&store);
        let mut seen = vec![0u32; store.len()];
        for q in lat.cells() {
            for &a in lat.cell_atoms(q) {
                seen[a as usize] += 1;
                prop_assert_eq!(lat.cell_of(store.positions()[a as usize]), q);
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
    }

    /// Rebuild is deterministic: two rebuilds give identical bins.
    #[test]
    fn rebuild_is_deterministic((store, bbox) in store_strategy()) {
        prop_assume!(bbox.lengths().x >= 3.0);
        let mut a = CellLattice::new(bbox, 1.0);
        let mut b = CellLattice::new(bbox, 1.0);
        a.rebuild(&store);
        b.rebuild(&store);
        for q in a.cells() {
            prop_assert_eq!(a.cell_atoms(q), b.cell_atoms(q));
        }
    }

    /// Kinetic energy and momentum identities: E_k ≥ 0, rescaling hits the
    /// target exactly, drift removal zeroes momentum and never raises E_k
    /// (removing the centre-of-mass motion only removes energy).
    #[test]
    fn store_observables((mut store, _bbox) in store_strategy(), t_target in 0.1f64..5.0) {
        prop_assume!(store.len() >= 2);
        let ek = store.kinetic_energy();
        prop_assert!(ek >= 0.0);
        let before = store.kinetic_energy();
        store.remove_drift();
        prop_assert!(store.net_momentum().norm() < 1e-9);
        prop_assert!(store.kinetic_energy() <= before + 1e-9);
        if store.kinetic_energy() > 0.0 {
            store.rescale_to_temperature(t_target);
            prop_assert!((store.temperature() - t_target).abs() < 1e-9);
        }
    }

    /// Ghost lattices only bin atoms inside their extended region, owned
    /// ones first.
    #[test]
    fn ghost_lattice_respects_region((store, _bbox) in store_strategy(), hi in 0i32..3) {
        let mut lat = GhostLattice::new(
            Vec3::splat(2.0),
            Vec3::splat(1.0),
            IVec3::splat(3),
            IVec3::ZERO,
            IVec3::splat(hi),
        );
        lat.rebuild(&store, store.len());
        let region = lat.extended_region();
        let mut binned = 0usize;
        for q in region.iter() {
            for &a in lat.cell_atoms(q) {
                binned += 1;
                prop_assert_eq!(lat.local_cell_of(store.positions()[a as usize]), q);
            }
        }
        // Exactly the atoms whose local cell is in the region are binned.
        let expect = store
            .positions()
            .iter()
            .filter(|&&r| region.contains(lat.local_cell_of(r)))
            .count();
        prop_assert_eq!(binned, expect);
        // Out-of-region queries are empty rather than panicking.
        prop_assert!(lat.cell_atoms_or_empty(IVec3::splat(-10)).is_empty());
    }
}
