//! Criterion: full per-step force computation of the paper's benchmark
//! application (silica, pair + triplet) under each method — the serial
//! compute side of Fig. 8.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_md::{build_silica_like, Method, Simulation};
use sc_potential::Vashishta;
use std::hint::black_box;

fn silica_sim(method: Method) -> Simulation {
    let v = Vashishta::silica();
    let masses = v.params().masses;
    let (store, bbox) = build_silica_like(3, 7.16, masses, 0.01, 7);
    Simulation::builder(store, bbox)
        .pair_potential(Box::new(v.pair.clone()))
        .triplet_potential(Box::new(v.triplet.clone()))
        .method(method)
        .timestep(0.0005)
        .build()
        .expect("valid silica simulation")
}

fn bench_force_silica(c: &mut Criterion) {
    let mut g = c.benchmark_group("silica_force_step");
    g.sample_size(10);
    for method in Method::ALL {
        let mut sim = silica_sim(method);
        g.bench_function(method.name(), |b| b.iter(|| black_box(sim.compute_forces())));
    }
    g.finish();
}

criterion_group!(benches, bench_force_silica);
criterion_main!(benches);
