//! Criterion: full distributed MD steps on the 8-rank BSP runtime — halo
//! exchange, force computation, reverse reduction, migration. SC's
//! one-sided 3-hop halo moves measurably less data than FS's two-sided
//! 6-hop halo.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_geom::IVec3;
use sc_md::{build_fcc_lattice, LatticeSpec, Method};
use sc_parallel::rank::ForceField;
use sc_parallel::DistributedSim;
use sc_potential::LennardJones;
use std::hint::black_box;

fn make_sim(method: Method) -> DistributedSim {
    let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(7, 1.5599), 0.1, 42);
    let ff = ForceField {
        pair: Some(Box::new(LennardJones::reduced(2.5))),
        triplet: None,
        quadruplet: None,
        method,
    };
    DistributedSim::new(store, bbox, IVec3::splat(2), ff, 0.002).expect("valid decomposition")
}

fn bench_halo_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_step_8ranks");
    g.sample_size(10);
    for method in [Method::ShiftCollapse, Method::FullShell] {
        let mut sim = make_sim(method);
        sim.step(); // prime forces so each iteration is a steady-state step
        g.bench_function(method.name(), |b| {
            b.iter(|| {
                sim.step();
                black_box(sim.potential_energy())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_halo_exchange);
criterion_main!(benches);
