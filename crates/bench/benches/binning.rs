//! Criterion: O(N) cell rebinning — the dynamic part of dynamic n-tuple
//! computation (the cell domain Ω is reconstructed every step, §3.1.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_bench::fixed_density_gas;
use sc_cell::CellLattice;
use std::hint::black_box;

fn bench_binning(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell_rebinning");
    g.sample_size(20);
    for cells in [8usize, 16] {
        let (store, bbox) = fixed_density_gas(cells, 1.0, 10.0, 7);
        let mut lat = CellLattice::new(bbox, 1.0);
        g.bench_with_input(
            BenchmarkId::new("rebuild", format!("{}atoms", store.len())),
            &store,
            |b, store| {
                b.iter(|| {
                    lat.rebuild(store);
                    black_box(lat.mean_cell_density())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_binning);
criterion_main!(benches);
