//! Criterion: cost of building computation patterns — the SC algorithm
//! itself (GENERATE-FS → OC-SHIFT → R-COLLAPSE) runs once per simulation,
//! but its cost grows as 27^{n-1} and is worth tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::{generate_fs, oc_shift, r_collapse, shift_collapse};
use std::hint::black_box;

fn bench_pattern_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("pattern_generation");
    g.sample_size(20);
    for n in [2usize, 3, 4] {
        g.bench_function(format!("generate_fs_n{n}"), |b| b.iter(|| black_box(generate_fs(n))));
        g.bench_function(format!("shift_collapse_n{n}"), |b| {
            b.iter(|| black_box(shift_collapse(n)))
        });
    }
    // Subroutine split at n = 4 (19 683 paths).
    let fs4 = generate_fs(4);
    g.bench_function("oc_shift_n4", |b| b.iter(|| black_box(oc_shift(&fs4))));
    let oc4 = oc_shift(&fs4);
    g.bench_function("r_collapse_n4", |b| b.iter(|| black_box(r_collapse(&oc4))));
    g.finish();
}

criterion_group!(benches, bench_pattern_gen);
criterion_main!(benches);
