//! Criterion ablation: enumeration cost under each stage of the SC
//! pipeline. R-COLLAPSE halves the search (Eq. 29); OC-SHIFT leaves it
//! unchanged (Theorem 1 — it only compresses the parallel footprint), so
//! `fs ≈ oc_only > rc_only ≈ sc`.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::fixed_density_gas;
use sc_cell::CellLattice;
use sc_core::{generate_fs, oc_shift, r_collapse, shift_collapse};
use sc_md::engine::{visit_triplets, Dedup, PatternPlan};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let rcut = 1.0;
    let (store, bbox) = fixed_density_gas(6, rcut, 1.5, 11);
    let mut lat = CellLattice::new(bbox, rcut);
    lat.rebuild(&store);

    let fs = generate_fs(3);
    let plans = [
        ("fs", PatternPlan::new(&fs, Dedup::Guarded)),
        ("oc_only", PatternPlan::new(&oc_shift(&fs), Dedup::Guarded)),
        ("rc_only", PatternPlan::new(&r_collapse(&fs), Dedup::Collapsed)),
        ("sc", PatternPlan::new(&shift_collapse(3), Dedup::Collapsed)),
    ];
    let mut g = c.benchmark_group("sc_pipeline_ablation");
    g.sample_size(20);
    for (name, plan) in &plans {
        g.bench_function(*name, |b| {
            b.iter(|| {
                let mut count = 0u64;
                visit_triplets(&lat, &store, plan, rcut, |_, _, _, _, _| count += 1);
                black_box(count)
            })
        });
    }
    // §6 cell-subdivision ablation: the same triplet search with half-size
    // cells and the reach-2 SC pattern — fewer candidates per accepted
    // tuple (reach_theory::search_volume_ratio(3, 2) ≈ 0.34).
    let mut lat_half = CellLattice::new(*lat.bbox(), rcut / 2.0);
    lat_half.rebuild(&store);
    let sc_k2 = PatternPlan::new(&sc_core::shift_collapse_reach(3, 2), Dedup::Collapsed);
    g.bench_function("sc_subdivided_k2", |b| {
        b.iter(|| {
            let mut count = 0u64;
            visit_triplets(&lat_half, &store, &sc_k2, rcut, |_, _, _, _, _| count += 1);
            black_box(count)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
