//! Criterion: real single-core triplet enumeration time, SC vs FS cell
//! sweeps vs the Hybrid pair-list prune — the measured counterpart of the
//! paper's search-cost analysis (§4.1, Fig. 7).

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::fixed_density_gas;
use sc_cell::CellLattice;
use sc_core::{generate_fs, shift_collapse};
use sc_md::engine::{visit_triplets, Dedup, PatternPlan};
use sc_md::methods::NeighborList;
use sc_md::Method;
use std::hint::black_box;

fn bench_enumeration(c: &mut Criterion) {
    // Silica-like triplet density on an 8³-cell domain.
    let rcut3 = 1.0;
    let rcut2 = 2.12; // rcut3/rcut2 ≈ 0.47, as in the paper's benchmark app
    let (store, bbox) = fixed_density_gas(8, rcut3, 1.5, 42);
    let mut lat3 = CellLattice::new(bbox, rcut3);
    lat3.rebuild(&store);
    let mut lat2 = CellLattice::new(bbox, rcut2);
    lat2.rebuild(&store);

    let sc_plan = PatternPlan::new(&shift_collapse(3), Dedup::Collapsed);
    let fs_plan = PatternPlan::new(&generate_fs(3), Dedup::Guarded);

    let mut g = c.benchmark_group("triplet_enumeration");
    g.sample_size(20);
    g.bench_function("sc_cell_sweep", |b| {
        b.iter(|| {
            let mut count = 0u64;
            visit_triplets(&lat3, &store, &sc_plan, rcut3, |_, _, _, _, _| count += 1);
            black_box(count)
        })
    });
    g.bench_function("fs_cell_sweep", |b| {
        b.iter(|| {
            let mut count = 0u64;
            visit_triplets(&lat3, &store, &fs_plan, rcut3, |_, _, _, _, _| count += 1);
            black_box(count)
        })
    });
    g.bench_function("hybrid_list_prune", |b| {
        // List build + prune, the full Hybrid triplet path.
        let pair_plan = Method::Hybrid.plan_for(2);
        b.iter(|| {
            let (nl, _) = NeighborList::build(&lat2, &store, &pair_plan, rcut2);
            let mut count = 0u64;
            nl.visit_triplets(rcut3, |_, _, _, _, _| count += 1);
            black_box(count)
        })
    });
    g.bench_function("hybrid_list_prune_sc_sweep", |b| {
        // The same Hybrid pipeline but with the list BUILT by the SC pair
        // pattern (14 paths, no reflective filtering) instead of the
        // paper's FS sweep — the framework's own improvement to the
        // production baseline.
        let sc_pair = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
        b.iter(|| {
            let (nl, _) = NeighborList::build(&lat2, &store, &sc_pair, rcut2);
            let mut count = 0u64;
            nl.visit_triplets(rcut3, |_, _, _, _, _| count += 1);
            black_box(count)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
