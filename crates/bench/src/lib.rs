//! Shared helpers for the sc-bench harness: workload builders and table
//! formatting used by the per-figure binaries and the Criterion benches.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sc_cell::{AtomStore, Species};
use sc_geom::{SimulationBox, Vec3};

/// Builds a uniform random gas with an exact average cell density: a cubic
/// lattice of `cells_per_axis³` cells of edge `cell_edge`, holding
/// `round(rho_cell · cells³)` atoms — the workload of the paper's Fig. 7
/// ("the average cell density ⟨ρcell⟩ is fixed for each measurement").
pub fn fixed_density_gas(
    cells_per_axis: usize,
    cell_edge: f64,
    rho_cell: f64,
    seed: u64,
) -> (AtomStore, SimulationBox) {
    assert!(cells_per_axis >= 3);
    let box_l = cells_per_axis as f64 * cell_edge;
    let n = (rho_cell * (cells_per_axis as f64).powi(3)).round() as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let bbox = SimulationBox::cubic(box_l);
    let mut store = AtomStore::single_species();
    for id in 0..n {
        let r = Vec3::new(
            rng.gen_range(0.0..box_l),
            rng.gen_range(0.0..box_l),
            rng.gen_range(0.0..box_l),
        );
        store.push(id as u64, Species::DEFAULT, r, Vec3::ZERO);
    }
    (store, bbox)
}

/// Formats a duration in engineering units for the report tables.
pub fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:8.1} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:8.2} ms", seconds * 1e3)
    } else {
        format!("{:8.3} s ", seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_density_gas_hits_target_density() {
        let (store, bbox) = fixed_density_gas(6, 1.0, 2.5, 3);
        assert_eq!(store.len(), (2.5f64 * 216.0).round() as usize);
        assert!((bbox.lengths().x - 6.0).abs() < 1e-12);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-5).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(2.0).contains("s"));
    }
}
