//! **Fig. 8** — runtime per MD step vs granularity N/P for SC-MD, FS-MD, and
//! Hybrid-MD on (a) the Intel-Xeon profile (48 nodes) and (b) the BlueGene/Q
//! profile (64 nodes), using the calibrated machine model (see
//! `sc-netmodel` and DESIGN.md for the substitution rationale).
//!
//! Paper reference points: finest grain (N/P = 24) speedups of SC over
//! FS/Hybrid = 10.5×/9.7× on Xeon and 5.7×/5.1× on BG/Q; SC→Hybrid
//! crossovers at N/P ≈ 2095 (Xeon) and ≈ 425 (BG/Q).
//!
//! Run: `cargo run -p sc-bench --release --bin fig8_granularity -- xeon`
//!      `cargo run -p sc-bench --release --bin fig8_granularity -- bgq`
//!      `... -- xeon --sweep-ratio` (ablation over r_cut3/r_cut2)

use sc_bench::fmt_time;
use sc_md::Method;
use sc_netmodel::{MachineProfile, MdCostModel, SilicaWorkload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = match args.first().map(String::as_str) {
        Some("bgq") => MachineProfile::bgq(),
        _ => MachineProfile::xeon(),
    };
    let model = MdCostModel::new(SilicaWorkload::silica(), profile);
    if args.iter().any(|a| a == "--sweep-ratio") {
        sweep_ratio(&model);
        return;
    }
    if args.iter().any(|a| a == "--measured") {
        measured();
        return;
    }
    println!("Fig. 8 — runtime per MD step vs granularity on {} (modeled)", model.machine.name);
    println!(
        "{:>8}  {:>11}  {:>11}  {:>11}  {:>9}  {:>9}",
        "N/P", "SC-MD", "FS-MD", "Hybrid-MD", "FS/SC", "Hyb/SC"
    );
    let grains = [24.0, 50.0, 100.0, 200.0, 425.0, 800.0, 1500.0, 2095.0, 3000.0, 6000.0, 12000.0];
    for &n in &grains {
        let sc = model.step_time(Method::ShiftCollapse, n).total_s();
        let fs = model.step_time(Method::FullShell, n).total_s();
        let hy = model.step_time(Method::Hybrid, n).total_s();
        println!(
            "{:>8}  {}  {}  {}  {:>9.2}  {:>9.2}",
            n,
            fmt_time(sc),
            fmt_time(fs),
            fmt_time(hy),
            fs / sc,
            hy / sc
        );
    }
    println!();
    let fine = 24.0;
    let s_fs = model.step_time(Method::FullShell, fine).total_s()
        / model.step_time(Method::ShiftCollapse, fine).total_s();
    let s_hy = model.step_time(Method::Hybrid, fine).total_s()
        / model.step_time(Method::ShiftCollapse, fine).total_s();
    println!("finest grain (N/P = 24): SC speedup over FS = {s_fs:.1}×, over Hybrid = {s_hy:.1}×");
    match model.crossover(Method::ShiftCollapse, Method::Hybrid, 24.0, 1e6) {
        Some(x) => println!("SC → Hybrid crossover at N/P ≈ {x:.0}"),
        None => println!("no SC → Hybrid crossover below N/P = 10⁶"),
    }
    let paper = if model.machine.name.contains("Xeon") {
        "paper: 10.5× / 9.7× at N/P = 24, crossover ≈ 2095"
    } else {
        "paper: 5.7× / 5.1× at N/P = 24, crossover ≈ 425"
    };
    println!("{paper}");
}

/// Real single-core measurement grounding the model's compute side: actual
/// per-step force-computation times for silica on this host. Granularities
/// here are whole periodic systems (a serial box must span ≥ 3 pair
/// cutoffs, so the finest paper grains are unreachable serially — the
/// distributed runtime covers those in `sc-parallel`'s tests).
fn measured() {
    use sc_md::{build_silica_like, Simulation};
    use sc_obs::PhaseBreakdown;
    use sc_potential::Vashishta;
    let v = Vashishta::silica();
    let masses = v.params().masses;
    println!("Measured serial per-step force time, silica (this host, single core)");
    println!("{:>8}  {:>11}  {:>11}  {:>11}", "atoms", "SC-MD", "FS-MD", "Hybrid-MD");
    for cells in [3usize, 4] {
        let mut times = vec![];
        let mut atoms = 0;
        for method in Method::ALL {
            let (store, bbox) = build_silica_like(cells, 7.16, masses, 0.01, 7);
            atoms = store.len();
            let mut sim = Simulation::builder(store, bbox)
                .pair_potential(Box::new(v.pair.clone()))
                .triplet_potential(Box::new(v.triplet.clone()))
                .method(method)
                .build()
                .expect("valid simulation");
            sim.compute_forces(); // warm up
            let reps = 5;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                sim.compute_forces();
            }
            times.push(t0.elapsed().as_secs_f64() / reps as f64);
        }
        println!(
            "{:>8}  {}  {}  {}",
            atoms,
            fmt_time(times[0]),
            fmt_time(times[1]),
            fmt_time(times[2])
        );
    }
    println!();
    println!("expected ordering at silica's cutoff ratio: Hybrid < SC < FS (coarse-grain");
    println!("regime of Fig. 8 — the search-cost side; import costs need the cluster).");

    // Step-phase breakdown: where a force computation actually spends its
    // time per method. enumerate/eval are summed per-lane seconds; bin and
    // reduce are wall seconds on the driving thread (exchange is zero in
    // shared memory).
    println!();
    println!("Per-phase breakdown, silica 4³ cells (detailed timing, mean of 5 steps)");
    println!(
        "{:>10}  {:>11}  {:>11}  {:>11}  {:>11}  {:>11}",
        "method", "bin", "exchange", "enumerate", "eval", "reduce"
    );
    for method in Method::ALL {
        use sc_md::RuntimeConfig;
        let (store, bbox) = build_silica_like(4, 7.16, masses, 0.01, 7);
        let mut sim = Simulation::builder(store, bbox)
            .pair_potential(Box::new(v.pair.clone()))
            .triplet_potential(Box::new(v.triplet.clone()))
            .method(method)
            .runtime(RuntimeConfig { detailed_timing: true, ..RuntimeConfig::default() })
            .build()
            .expect("valid simulation");
        sim.compute_forces(); // warm up (first call allocates the scratch pool)
        let reps = 5u32;
        let mut phases = PhaseBreakdown::default();
        for _ in 0..reps {
            phases.accumulate(&sim.compute_forces().phases);
        }
        let r = f64::from(reps);
        println!(
            "{:>10}  {}  {}  {}  {}  {}",
            method.name(),
            fmt_time(phases.bin_s() / r),
            fmt_time(phases.exchange_s() / r),
            fmt_time(phases.enumerate_s() / r),
            fmt_time(phases.eval_s() / r),
            fmt_time(phases.reduce_s() / r),
        );
    }
}

/// Ablation: how the SC→Hybrid crossover moves with the cutoff ratio
/// r_cut3/r_cut2. Hybrid's whole advantage is the short triplet cutoff; as
/// the ratio grows toward 1 the pair list stops paying off and SC wins at
/// every granularity.
fn sweep_ratio(base: &MdCostModel) {
    println!("Ablation — SC→Hybrid crossover vs r_cut3/r_cut2 on {}", base.machine.name);
    println!("{:>8} {:>10}", "ratio", "crossover");
    for ratio in [0.3, 0.4, 0.47, 0.6, 0.7, 0.8, 0.9] {
        let mut w = SilicaWorkload::silica();
        w.rcut3 = w.rcut2 * ratio;
        let model =
            MdCostModel { workload: w, machine: base.machine.clone(), consts: base.consts.clone() };
        match model.crossover(Method::ShiftCollapse, Method::Hybrid, 24.0, 1e7) {
            Some(x) => println!("{ratio:>8.2} {x:>10.0}"),
            None => println!("{ratio:>8.2} {:>10}", "none"),
        }
    }
}
