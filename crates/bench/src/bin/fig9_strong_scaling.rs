//! **Fig. 9** — strong-scaling speedup of SC-MD, FS-MD, and Hybrid-MD on
//! (a) the Intel-Xeon profile (0.88M atoms, 12–768 cores) and (b) the
//! BlueGene/Q profile (0.79M atoms, 16–8192 cores), from the calibrated
//! machine model.
//!
//! Paper reference points: SC-MD 59.3× (92.6% efficiency) at 768 Xeon
//! cores vs FS 24.5× and Hybrid 17.1×; SC-MD 465.6× (90.9%) at 8192 BG/Q
//! cores vs FS 55.1× and Hybrid 95.2×.
//!
//! Run: `cargo run -p sc-bench --release --bin fig9_strong_scaling -- xeon`
//!      `cargo run -p sc-bench --release --bin fig9_strong_scaling -- bgq`
//!      `... -- --measured` (in-process distributed runs with phase timers)
//!      `... -- --measured --faults 4` (additionally seed 4 transport faults)
//!      `... -- --measured --trace DIR` (write Chrome Trace timelines)
//!
//! `--measured` also emits one telemetry JSON line per method (the
//! `sc_md::Telemetry` layout pinned by `schema/metrics.schema.json`),
//! including the per-rank phase breakdowns and the load-imbalance report.
//! With `--trace DIR` each method's run additionally records event-level
//! traces and writes `DIR/fig9_<method>_rank<r>.json` (one timeline per
//! rank) plus the merged `DIR/fig9_<method>.json`.

use sc_md::Method;
use sc_netmodel::{MachineProfile, MdCostModel, SilicaWorkload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = args.first().cloned().unwrap_or_else(|| "xeon".into());
    if arg == "--measured" {
        let n_faults = args
            .iter()
            .position(|a| a == "--faults")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse::<usize>().expect("--faults takes a count"))
            .unwrap_or(0);
        let trace_dir = args
            .iter()
            .position(|a| a == "--trace")
            .map(|i| args.get(i + 1).expect("--trace takes a directory").clone());
        measured(n_faults, trace_dir.as_deref());
        return;
    }
    let (profile, n_total, cores, ref_cores): (MachineProfile, f64, Vec<usize>, usize) = if arg
        == "bgq"
    {
        (MachineProfile::bgq(), 0.79e6, vec![16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192], 16)
    } else {
        (MachineProfile::xeon(), 0.88e6, vec![12, 24, 48, 96, 192, 384, 768], 12)
    };
    let model = MdCostModel::new(SilicaWorkload::silica(), profile);
    println!(
        "Fig. 9 — strong scaling on {} ({:.2}M atoms, reference = {} cores; modeled)",
        model.machine.name,
        n_total / 1e6,
        ref_cores
    );
    println!(
        "{:>8} {:>8} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6}",
        "cores", "N/P", "SC spd", "eff", "FS spd", "eff", "Hyb spd", "eff"
    );
    let curves: Vec<_> =
        Method::ALL.iter().map(|&m| model.strong_scaling(m, n_total, &cores, ref_cores)).collect();
    for (i, &p) in cores.iter().enumerate() {
        let grain = n_total / p as f64;
        let sc = curves[0][i];
        let fs = curves[1][i];
        let hy = curves[2][i];
        println!(
            "{:>8} {:>8.0} | {:>9.1} {:>5.1}% | {:>9.1} {:>5.1}% | {:>9.1} {:>5.1}%",
            p,
            grain,
            sc.speedup,
            sc.efficiency * 100.0,
            fs.speedup,
            fs.efficiency * 100.0,
            hy.speedup,
            hy.efficiency * 100.0
        );
    }
    println!();
    if arg == "bgq" {
        println!("paper at 8192 cores: SC 465.6× (90.9%), FS 55.1× (10.8%), Hybrid 95.2× (18.6%)");
    } else {
        println!("paper at 768 cores: SC 59.3× (92.6%), FS 24.5× (38.3%), Hybrid 17.1× (26.8%)");
    }
}

/// Real in-process distributed runs grounding the model's executor side:
/// the BSP executor over a 2×2×2 rank grid on a small silica box, with the
/// wall-clock phase decomposition (Eq. 30's `T_compute + T_comm`, measured)
/// and the per-rank compute breakdown underneath it. With `n_faults > 0`,
/// an extra SC-MD run seeds that many transport faults and reports the
/// retry/fault counters; without it those sections are omitted entirely.
fn measured(n_faults: usize, trace_dir: Option<&str>) {
    use sc_bench::fmt_time;
    use sc_geom::IVec3;
    use sc_md::build_silica_like;
    use sc_obs::{chrome_trace, Registry, Tracer};
    use sc_parallel::rank::ForceField;
    use sc_parallel::DistributedSim;
    use sc_potential::Vashishta;

    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(dir).expect("trace directory is creatable");
    }

    let v = Vashishta::silica();
    let masses = v.params().masses;
    let steps = 3;
    println!("Measured distributed phase breakdown, silica 4³ cells, 2×2×2 ranks, {steps} steps");
    println!(
        "{:>6} {:>8}  {:>11}  {:>11}  {:>11}  {:>11}  {:>11}  {:>6}",
        "method", "atoms", "migrate", "exchange", "compute", "reduce", "integrate", "comm%"
    );
    let mut breakdowns = vec![];
    let mut telemetry_lines = vec![];
    let mut imbalance_tables = vec![];
    for method in Method::ALL {
        let (store, bbox) = build_silica_like(4, 7.16, masses, 0.01, 7);
        let atoms = store.len();
        let ff = ForceField {
            pair: Some(Box::new(v.pair.clone())),
            triplet: Some(Box::new(v.triplet.clone())),
            quadruplet: None,
            method,
        };
        let mut d = DistributedSim::new(store, bbox, IVec3::splat(2), ff, 0.001)
            .expect("valid distributed setup");
        d.set_metrics(Registry::new());
        let tracer = if trace_dir.is_some() { Tracer::new() } else { Tracer::disabled() };
        d.set_tracer(tracer.clone());
        d.run(steps);
        if let Some(dir) = trace_dir {
            let events = tracer.events();
            // One timeline per rank, plus the merged cross-rank view.
            let mut ranks: Vec<u32> = events.iter().map(|e| e.rank).collect();
            ranks.sort_unstable();
            ranks.dedup();
            for r in ranks {
                let per_rank: Vec<_> = events.iter().filter(|e| e.rank == r).copied().collect();
                let path = format!("{dir}/fig9_{}_rank{r}.json", method.name());
                std::fs::write(&path, chrome_trace(&per_rank).to_string())
                    .expect("trace file is writable");
            }
            let merged = format!("{dir}/fig9_{}.json", method.name());
            std::fs::write(&merged, chrome_trace(&events).to_string())
                .expect("trace file is writable");
            println!("# traces for {} written under {dir}/", method.name());
        }
        let t = d.timings();
        println!(
            "{:>6} {:>8}  {}  {}  {}  {}  {}  {:>5.1}%",
            method.name(),
            atoms,
            fmt_time(t.migrate_s()),
            fmt_time(t.exchange_s()),
            fmt_time(t.compute_s()),
            fmt_time(t.reduce_s()),
            fmt_time(t.integrate_s()),
            t.comm_fraction() * 100.0
        );
        breakdowns.push((method, d.phase_breakdown()));
        let t = d.telemetry();
        telemetry_lines.push(t.to_json());
        if let Some(report) = t.imbalance() {
            imbalance_tables.push((method, report));
        }
    }
    println!();
    println!("Inside compute (summed per-rank seconds): bin / enumerate / scratch-reduce");
    for (method, p) in breakdowns {
        println!(
            "{:>6}  bin {}  enumerate {}  reduce {}",
            method.name(),
            fmt_time(p.bin_s()),
            fmt_time(p.enumerate_s()),
            fmt_time(p.reduce_s()),
        );
    }
    println!();
    println!("Load imbalance (per-rank compute seconds vs comm wait):");
    for (method, report) in &imbalance_tables {
        println!("{}:", method.name());
        print!("{}", report.render_table());
    }
    println!();
    println!("Telemetry JSON (one line per method):");
    for line in &telemetry_lines {
        println!("{line}");
    }

    if n_faults == 0 {
        return;
    }

    // Fault overhead: the same SC-MD run with scripted transport faults,
    // recovered in-step by the validated exchange's retry protocol.
    use sc_parallel::FaultPlan;
    let (store, bbox) = build_silica_like(4, 7.16, masses, 0.01, 7);
    let ff = ForceField {
        pair: Some(Box::new(v.pair.clone())),
        triplet: Some(Box::new(v.triplet.clone())),
        quadruplet: None,
        method: Method::ShiftCollapse,
    };
    let mut d = DistributedSim::new(store, bbox, IVec3::splat(2), ff, 0.001)
        .expect("valid distributed setup");
    d.set_metrics(Registry::new());
    d.set_fault_plan(FaultPlan::random(42, n_faults, steps as u64, 8));
    let t0 = std::time::Instant::now();
    for _ in 0..steps {
        d.try_step().expect("single transport faults are absorbed by retry");
    }
    let wall = t0.elapsed().as_secs_f64();
    let cs = d.comm_stats();
    println!();
    println!("Fault overhead (SC-MD, {n_faults} seeded transport faults, validated exchange):");
    println!(
        "  fired {} fault events; detected {} delivery failures; {} retries; wall {}",
        d.fault_plan().events().len(),
        cs.faults_detected,
        cs.retries,
        fmt_time(wall)
    );
    println!("{}", d.telemetry().to_json());
}
