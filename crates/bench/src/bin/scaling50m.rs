//! **§5.3 extreme-scale run** — strong scaling of SC-MD for a 50.3M-atom
//! system on the BlueGene/Q profile, 128 → 524 288 cores (up to 2 097 152
//! MPI tasks in the paper's 4-tasks/core configuration).
//!
//! Paper reference: speedup 3764.6× (91.9% efficiency) at 524 288 cores
//! relative to the 128-core (8-node) reference.
//!
//! Run: `cargo run -p sc-bench --release --bin scaling50m`

use sc_md::Method;
use sc_netmodel::{MachineProfile, MdCostModel, SilicaWorkload};

fn main() {
    let model = MdCostModel::new(SilicaWorkload::silica(), MachineProfile::bgq());
    let n_total = 50.3e6;
    let cores = [128usize, 512, 2048, 8192, 32_768, 131_072, 524_288];
    println!("§5.3 — SC-MD strong scaling, 50.3M atoms on BlueGene/Q (modeled)");
    println!("{:>9} {:>10} {:>11} {:>7}", "cores", "N/P", "speedup", "eff");
    for p in model.strong_scaling(Method::ShiftCollapse, n_total, &cores, 128) {
        println!(
            "{:>9} {:>10.0} {:>11.1} {:>6.1}%",
            p.cores,
            n_total / p.cores as f64,
            p.speedup,
            p.efficiency * 100.0
        );
    }
    println!();
    println!("paper at 524 288 cores: 3764.6× speedup, 91.9% parallel efficiency");
}
