//! **Fig. 7** — average number of triplets in the force set as a function of
//! domain size (number of cells), for FS-MD vs SC-MD at fixed average cell
//! density.
//!
//! The paper measures ≈ 2.13× more triplets in the FS force set than in the
//! SC force set; the theoretical path-count ratio is
//! `|Ψ_FS(3)| / |Ψ_SC(3)| = 729/378 ≈ 1.93`, approaching 2 for large n
//! (Eq. 29). FS's force set retains the reflective duplicate of every
//! non-self-reflective triplet; SC's contains each undirected triplet once.
//!
//! Run: `cargo run -p sc-bench --release --bin fig7_triplet_count`

use sc_bench::fixed_density_gas;
use sc_cell::CellLattice;
use sc_core::{generate_fs, shift_collapse, theory};
use sc_md::engine::{visit_ntuples, visit_triplets, Dedup, PatternPlan};

fn main() {
    if std::env::args().any(|a| a == "--orders") {
        all_orders();
        return;
    }
    // Silica-like triplet cell density: ρ_cell = ρ·r_cut3³ ≈ 1.16, boosted a
    // little so small domains still hold enough triplets to average well.
    let rho_cell = 2.0;
    let rcut3 = 1.0; // reduced units: cell edge = cutoff
    println!("Fig. 7 — triplets in the force set vs domain size (⟨ρ_cell⟩ = {rho_cell})");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>8}",
        "cells", "atoms", "FS triplets", "SC triplets", "FS/SC"
    );
    // FS with only self-reflective guards = the raw FS force set (reflective
    // duplicates retained), matching what FS-MD stores before filtering.
    let fs_plan = PatternPlan::new(&generate_fs(3), Dedup::Collapsed);
    let sc_plan = PatternPlan::new(&shift_collapse(3), Dedup::Collapsed);
    let mut ratios = vec![];
    for l in [4usize, 5, 6, 8, 10, 12] {
        // Average over a few random configurations (the paper averages over
        // 10 000 MD steps).
        let (mut fs_total, mut sc_total, mut atoms) = (0u64, 0u64, 0usize);
        let samples = 3;
        for s in 0..samples {
            let (store, bbox) = fixed_density_gas(l, rcut3, rho_cell, 100 + s);
            let mut lat = CellLattice::new(bbox, rcut3);
            lat.rebuild(&store);
            fs_total += visit_triplets(&lat, &store, &fs_plan, rcut3, |_, _, _, _, _| {}).accepted;
            sc_total += visit_triplets(&lat, &store, &sc_plan, rcut3, |_, _, _, _, _| {}).accepted;
            atoms = store.len();
        }
        let fs = fs_total as f64 / samples as f64;
        let sc = sc_total as f64 / samples as f64;
        ratios.push(fs / sc);
        println!("{:>8} {:>10} {:>14.0} {:>14.0} {:>8.3}", l * l * l, atoms, fs, sc, fs / sc);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!();
    println!("mean FS/SC force-set ratio: {mean:.3}");
    println!(
        "paper: ≈ 2.13 measured; path-count theory: {:.3} (Eq. 29), → 2 as n grows",
        theory::fs_over_sc_ratio(3)
    );
}

/// Extension of Fig. 7 across tuple orders: the FS/SC force-set ratio for
/// n = 2..4 on one domain, against the Eq. 29 path-count ratio.
fn all_orders() {
    let rho_cell = 2.0;
    let rcut = 1.0;
    let (store, bbox) = fixed_density_gas(6, rcut, rho_cell, 100);
    let mut lat = CellLattice::new(bbox, rcut);
    lat.rebuild(&store);
    println!("Fig. 7 extension — FS/SC force-set ratio by tuple order (6³ cells)");
    println!("{:>3} {:>14} {:>14} {:>8} {:>10}", "n", "FS tuples", "SC tuples", "FS/SC", "theory");
    for n in 2..=4usize {
        let count = |pat, dedup| {
            let plan = PatternPlan::new(&pat, dedup);
            visit_ntuples(&lat, &store, &plan, rcut, |_| {}).accepted
        };
        // FS with only self-reflective guards = its raw (duplicated) force
        // set; SC's is duplicate-free.
        let fs = count(generate_fs(n), Dedup::Collapsed);
        let sc = count(shift_collapse(n), Dedup::Collapsed);
        println!(
            "{:>3} {:>14} {:>14} {:>8.3} {:>10.3}",
            n,
            fs,
            sc,
            fs as f64 / sc as f64,
            theory::fs_over_sc_ratio(n)
        );
    }
}
