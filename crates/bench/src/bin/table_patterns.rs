//! **§4 analysis tables** — pattern sizes, footprints, and import volumes:
//! the quantitative content of the paper's theory section, computed both
//! from the closed forms (Eqs. 25, 27, 29, 33) and from the constructive
//! algorithms, side by side.
//!
//! Run: `cargo run -p sc-bench --release --bin table_patterns`
//!      `... --bin table_patterns -- --ablation`

use sc_core::{
    eighth_shell, full_shell, generate_fs, generate_fs_reach, half_shell, import_volume_cubic,
    oc_shift, r_collapse, reach_theory, shift_collapse, shift_collapse_reach, theory,
};

fn main() {
    if std::env::args().any(|a| a == "--ablation") {
        ablation();
        return;
    }
    if std::env::args().any(|a| a == "--reach") {
        reach_table();
        return;
    }
    println!("Pattern sizes (Eqs. 25/27/29) — constructed vs closed form");
    println!(
        "{:>3} {:>12} {:>12} {:>14} {:>10} {:>8}",
        "n", "|Ψ_FS|", "|Ψ_SC|", "self-refl.", "FS/SC", "check"
    );
    for n in 2..=5usize {
        let (fs_c, sc_c, sr_c) = if n <= 4 {
            let fs = generate_fs(n);
            let sc = shift_collapse(n);
            (fs.len() as u64, sc.len() as u64, sc.self_reflective_count() as u64)
        } else {
            // n = 5 constructs 531 441 paths; closed forms only are shown,
            // verified constructively in the sc-core test suite for n ≤ 5.
            (theory::fs_path_count(n), theory::sc_path_count(n), theory::self_reflective_count(n))
        };
        let ok = fs_c == theory::fs_path_count(n)
            && sc_c == theory::sc_path_count(n)
            && sr_c == theory::self_reflective_count(n);
        println!(
            "{:>3} {:>12} {:>12} {:>14} {:>10.3} {:>8}",
            n,
            fs_c,
            sc_c,
            sr_c,
            theory::fs_over_sc_ratio(n),
            if ok { "ok" } else { "MISMATCH" }
        );
    }

    println!();
    println!("Classical pair methods (§4.3): paths and single-cell imports");
    for (name, pat) in [
        ("FS", full_shell()),
        ("HS", half_shell()),
        ("ES", eighth_shell()),
        ("SC(2)", shift_collapse(2)),
    ] {
        println!(
            "  {:6} |Ψ| = {:>2}, footprint = {:>2}, imports (l=1) = {:>2}",
            name,
            pat.len(),
            pat.footprint(),
            import_volume_cubic(1, &pat)
        );
    }

    println!();
    println!("Import volume Vω for cubic domains (Eq. 33) — constructed vs closed form");
    println!(
        "{:>3} {:>3} {:>12} {:>12} {:>12} {:>12}",
        "n", "l", "SC (built)", "SC (Eq.33)", "FS (built)", "midpoint"
    );
    for n in 2..=4usize {
        let sc = shift_collapse(n);
        let fs = generate_fs(n);
        for l in 1..=4u32 {
            println!(
                "{:>3} {:>3} {:>12} {:>12} {:>12} {:>12}",
                n,
                l,
                import_volume_cubic(l, &sc),
                theory::sc_import_volume(l as u64, n),
                import_volume_cubic(l, &fs),
                theory::midpoint_import_volume(l as u64, n),
            );
        }
    }
    println!();
    println!("midpoint (Bowers et al. 2006, §6): same volume as SC but spread over 26");
    println!("neighbour ranks / 6 hops vs SC's 7 neighbours / 3 hops — and without the");
    println!("reflective search collapse.");
}

/// The §6 generalization: reach-k patterns for cells of edge `r_cut/k`
/// (toward the midpoint method), with the search-volume trade-off.
fn reach_table() {
    println!("Reach-k patterns (§6 / midpoint regime): cells of edge r_cut/k");
    println!(
        "{:>3} {:>3} {:>12} {:>12} {:>12} {:>14}",
        "n", "k", "|Ψ_FS|", "|Ψ_SC|", "imports l=2", "search ratio"
    );
    for (n, k) in [(2usize, 1u32), (2, 2), (2, 3), (3, 1), (3, 2)] {
        let fs = generate_fs_reach(n, k as i32);
        let sc = shift_collapse_reach(n, k as i32);
        assert_eq!(fs.len() as u64, reach_theory::fs_path_count(n, k));
        assert_eq!(sc.len() as u64, reach_theory::sc_path_count(n, k));
        println!(
            "{:>3} {:>3} {:>12} {:>12} {:>12} {:>14.3}",
            n,
            k,
            fs.len(),
            sc.len(),
            import_volume_cubic(2, &sc),
            reach_theory::search_volume_ratio(n, k),
        );
    }
    println!();
    println!("search ratio < 1: subdividing cells examines fewer candidates per atom");
    println!("(the SC collapse still halves the pattern at every k — Eq. 29 generalizes)");
}

/// Ablation: what each SC subroutine contributes. OC-SHIFT alone compresses
/// the footprint but keeps the redundant search; R-COLLAPSE alone halves the
/// search but keeps the full-shell import; SC does both.
fn ablation() {
    println!("Ablation — contribution of each subroutine (n = 3, l = 2 domain)");
    println!("{:>18} {:>8} {:>10} {:>12}", "pattern", "|Ψ|", "footprint", "imports(l=2)");
    let fs = generate_fs(3);
    let oc = oc_shift(&fs);
    let rc = r_collapse(&fs);
    let sc = shift_collapse(3);
    for (name, pat) in
        [("FS", &fs), ("OC-SHIFT only", &oc), ("R-COLLAPSE only", &rc), ("SC (both)", &sc)]
    {
        println!(
            "{:>18} {:>8} {:>10} {:>12}",
            name,
            pat.len(),
            pat.footprint(),
            import_volume_cubic(2, pat)
        );
    }
    println!();
    println!("search cost ∝ |Ψ| (Lemma 5); parallel import ∝ the last column (Eq. 14)");
}
