//! Truncated-and-shifted Lennard-Jones pair potential.

use crate::PairPotential;
use sc_cell::Species;
use serde::{Deserialize, Serialize};

/// The 12-6 Lennard-Jones potential,
/// `U(r) = 4ε[(σ/r)¹² − (σ/r)⁶] − U(r_c)`, truncated and shifted to zero at
/// the cutoff so the energy is continuous there.
///
/// Species-independent: every pair interacts with the same (ε, σ). Use
/// [`LennardJones::reduced`] for the standard reduced-unit liquid
/// (ε = σ = 1).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LennardJones {
    /// Well depth ε.
    pub epsilon: f64,
    /// Length scale σ.
    pub sigma: f64,
    /// Cutoff distance.
    pub rcut: f64,
    shift: f64,
}

impl LennardJones {
    /// Creates a Lennard-Jones potential with explicit parameters.
    ///
    /// # Panics
    /// Panics unless `0 < sigma < rcut` and `epsilon > 0`.
    pub fn new(epsilon: f64, sigma: f64, rcut: f64) -> Self {
        assert!(epsilon > 0.0 && sigma > 0.0 && rcut > sigma, "bad LJ parameters");
        let sr6 = (sigma / rcut).powi(6);
        let shift = 4.0 * epsilon * (sr6 * sr6 - sr6);
        LennardJones { epsilon, sigma, rcut, shift }
    }

    /// Reduced units: ε = σ = 1 with the given cutoff (2.5 is the
    /// conventional LJ liquid choice).
    pub fn reduced(rcut: f64) -> Self {
        LennardJones::new(1.0, 1.0, rcut)
    }
}

impl PairPotential for LennardJones {
    fn cutoff(&self) -> f64 {
        self.rcut
    }

    fn eval(&self, _si: Species, _sj: Species, r: f64) -> (f64, f64) {
        // The engine filters to r < rcut; direct callers (e.g. tabulation)
        // may legitimately sample r = rcut itself.
        debug_assert!(r > 0.0 && r <= self.rcut + 1e-12);
        let sr = self.sigma / r;
        let sr6 = sr.powi(6);
        let sr12 = sr6 * sr6;
        let u = 4.0 * self.epsilon * (sr12 - sr6) - self.shift;
        // du/dr = 4ε(−12 σ¹²/r¹³ + 6 σ⁶/r⁷) = (24ε/r)(sr6 − 2 sr12)
        let du_dr = 24.0 * self.epsilon * (sr6 - 2.0 * sr12) / r;
        (u, du_dr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::assert_forces_match;
    use sc_geom::Vec3;

    const S: Species = Species(0);

    #[test]
    fn minimum_at_two_pow_sixth() {
        let lj = LennardJones::reduced(2.5);
        let rmin = 2f64.powf(1.0 / 6.0);
        let (_, du) = lj.eval(S, S, rmin);
        assert!(du.abs() < 1e-12, "du/dr at the minimum should vanish, got {du}");
        // Energy near the minimum ≈ −1 + |shift at 2.5| ≈ −0.9837.
        let (u, _) = lj.eval(S, S, rmin);
        assert!((u + 0.9837).abs() < 0.01, "LJ minimum energy {u}");
    }

    #[test]
    fn shifted_to_zero_at_cutoff() {
        let lj = LennardJones::reduced(2.5);
        let (u, _) = lj.eval(S, S, 2.5 - 1e-9);
        assert!(u.abs() < 1e-6);
    }

    #[test]
    fn repulsive_at_short_range() {
        let lj = LennardJones::reduced(2.5);
        let (u, du) = lj.eval(S, S, 0.8);
        assert!(u > 0.0);
        assert!(du < 0.0); // force pushes apart: f = -du/dr > 0
    }

    #[test]
    fn forces_match_finite_differences() {
        let lj = LennardJones::reduced(2.5);
        for r in [0.9, 1.0, 1.12, 1.5, 2.0, 2.4] {
            let pos = vec![Vec3::ZERO, Vec3::new(r, 0.0, 0.0)];
            let d = pos[1] - pos[0];
            let (_, du) = lj.eval(S, S, d.norm());
            // f1 = -du/dr · d̂ (force on atom 1, pointing away from atom 0
            // when repulsive).
            let f1 = -(du / d.norm()) * d;
            let forces = vec![-f1, f1];
            assert_forces_match(&pos, &forces, 1e-6, 1e-6, |p| {
                let r = (p[1] - p[0]).norm();
                lj.eval(S, S, r).0
            });
        }
    }

    #[test]
    fn scaling_with_epsilon_and_sigma() {
        let a = LennardJones::new(2.0, 1.0, 2.5);
        let b = LennardJones::new(1.0, 1.0, 2.5);
        let (ua, _) = a.eval(S, S, 1.3);
        let (ub, _) = b.eval(S, S, 1.3);
        assert!((ua - 2.0 * ub).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn cutoff_below_sigma_rejected() {
        let _ = LennardJones::new(1.0, 2.0, 1.0);
    }
}
