//! A smooth 4-body chain potential exercising the n = 4 enumeration path.

use crate::QuadrupletPotential;
use sc_cell::Species;
use sc_geom::Vec3;
use serde::{Deserialize, Serialize};

/// A torsion-like quadruplet potential over bonded chains
/// `(r0, r1, r2, r3)`:
///
/// ```text
/// U = K · ζ(|d01|) ζ(|d12|) ζ(|d23|) · (d̂01 · d̂23)
/// ```
///
/// where `ζ(r) = exp(γ/(r − r_c))` for `r < r_c` (0 beyond) smoothly switches
/// each link off at the cutoff, and the alignment factor `d̂01 · d̂23`
/// penalizes *cis* (aligned end-link) conformations for `K > 0` —
/// qualitatively what a `cos φ` dihedral term does, with a fully analytic
/// gradient.
///
/// The reactive force fields motivating the paper (ReaxFF, §1) evaluate
/// explicit 4-body torsions over dynamically discovered bonded chains; this
/// term reproduces that computational shape (chain-cutoff quadruplet
/// enumeration every step) with a simple closed form.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TorsionToy {
    /// Interaction strength K.
    pub k: f64,
    /// Link cutoff `r_cut-4`.
    pub rcut: f64,
    /// Screening strength γ.
    pub gamma: f64,
}

impl TorsionToy {
    /// Creates the potential.
    pub fn new(k: f64, rcut: f64, gamma: f64) -> Self {
        assert!(rcut > 0.0 && gamma > 0.0);
        TorsionToy { k, rcut, gamma }
    }

    /// ζ and dζ/dr.
    fn screen(&self, r: f64) -> (f64, f64) {
        if r >= self.rcut {
            (0.0, 0.0)
        } else {
            let z = (self.gamma / (r - self.rcut)).exp();
            (z, -self.gamma / ((r - self.rcut) * (r - self.rcut)) * z)
        }
    }
}

impl QuadrupletPotential for TorsionToy {
    fn cutoff(&self) -> f64 {
        self.rcut
    }

    fn eval(&self, _species: [Species; 4], d01: Vec3, d12: Vec3, d23: Vec3) -> (f64, [Vec3; 4]) {
        let r01 = d01.norm();
        let r12 = d12.norm();
        let r23 = d23.norm();
        let (z1, dz1) = self.screen(r01);
        let (z2, dz2) = self.screen(r12);
        let (z3, dz3) = self.screen(r23);
        if z1 == 0.0 || z2 == 0.0 || z3 == 0.0 {
            return (0.0, [Vec3::ZERO; 4]);
        }
        let u_hat = d01 / r01;
        let w_hat = d23 / r23;
        let s = u_hat.dot(w_hat);
        let zeta = z1 * z2 * z3;
        let u = self.k * zeta * s;

        // Gradients of s with respect to the link vectors:
        // ∂s/∂d01 = (ŵ − s û)/r01, ∂s/∂d23 = (û − s ŵ)/r23, ∂s/∂d12 = 0.
        let ds_d01 = (w_hat - u_hat * s) / r01;
        let ds_d23 = (u_hat - w_hat * s) / r23;
        // Gradients of ζ-product wrt link vectors (through the link norms).
        let dz_d01 = u_hat * (dz1 * z2 * z3);
        let dz_d12 = (d12 / r12) * (z1 * dz2 * z3);
        let dz_d23 = w_hat * (z1 * z2 * dz3);

        // ∂U/∂d_link = K (ζ' s + ζ s')
        let du_d01 = dz_d01 * (self.k * s) + ds_d01 * (self.k * zeta);
        let du_d12 = dz_d12 * (self.k * s);
        let du_d23 = dz_d23 * (self.k * s) + ds_d23 * (self.k * zeta);

        // Chain rule through d01 = r1−r0, d12 = r2−r1, d23 = r3−r2:
        // ∂U/∂r0 = −∂U/∂d01, ∂U/∂r1 = ∂U/∂d01 − ∂U/∂d12, …, and
        // f_i = −∂U/∂r_i.
        let f0 = du_d01;
        let f1 = du_d12 - du_d01;
        let f2 = du_d23 - du_d12;
        let f3 = -du_d23;
        (u, [f0, f1, f2, f3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::assert_forces_match;

    const SP: [Species; 4] = [Species(0); 4];

    fn eval_at(t: &TorsionToy, pos: &[Vec3]) -> (f64, [Vec3; 4]) {
        t.eval(SP, pos[1] - pos[0], pos[2] - pos[1], pos[3] - pos[2])
    }

    #[test]
    fn aligned_chain_is_penalized_antialigned_favored() {
        let t = TorsionToy::new(1.0, 2.0, 0.5);
        // Straight chain: end links aligned, s = 1 → U > 0.
        let straight = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        ];
        let (u_straight, _) = eval_at(&t, &straight);
        assert!(u_straight > 0.0);
        // Hairpin: end links anti-aligned, s = −1 → U < 0.
        // End links anti-parallel: d01 = (−1,0,0), d23 = (+1,0,0).
        let hairpin = vec![
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        ];
        let (u_hairpin, _) = eval_at(&t, &hairpin);
        assert!(u_hairpin < 0.0);
    }

    #[test]
    fn vanishes_when_any_link_exceeds_cutoff() {
        let t = TorsionToy::new(1.0, 1.5, 0.5);
        let pos = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.6, 0.0, 0.0), // first link too long
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        ];
        let (u, f) = eval_at(&t, &pos);
        assert_eq!(u, 0.0);
        assert!(f.iter().all(|v| *v == Vec3::ZERO));
    }

    #[test]
    fn forces_sum_to_zero() {
        let t = TorsionToy::new(0.7, 2.0, 0.4);
        let pos = vec![
            Vec3::new(0.1, -0.2, 0.0),
            Vec3::new(1.2, 0.3, 0.1),
            Vec3::new(1.9, 1.2, -0.3),
            Vec3::new(2.8, 1.0, 0.5),
        ];
        let (_, f) = eval_at(&t, &pos);
        let net: Vec3 = f.iter().copied().sum();
        assert!(net.norm() < 1e-12);
    }

    #[test]
    fn forces_match_finite_differences() {
        let t = TorsionToy::new(0.7, 2.0, 0.4);
        let pos = vec![
            Vec3::new(0.1, -0.2, 0.0),
            Vec3::new(1.2, 0.3, 0.1),
            Vec3::new(1.9, 1.2, -0.3),
            Vec3::new(2.8, 1.0, 0.5),
        ];
        let (_, f) = eval_at(&t, &pos);
        assert_forces_match(&pos, &f, 1e-6, 1e-5, |p| eval_at(&t, p).0);
    }

    #[test]
    fn torque_straightens_toward_lower_energy() {
        // With K > 0 the straight chain is a maximum of the alignment term;
        // forces on the ends should push it to bend.
        let t = TorsionToy::new(1.0, 2.0, 0.5);
        let bent = vec![
            Vec3::new(0.0, 0.05, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.05, 0.0),
        ];
        let (u0, f) = eval_at(&t, &bent);
        // Step along the forces: energy must decrease.
        let eps = 1e-4;
        let moved: Vec<Vec3> = bent.iter().zip(f.iter()).map(|(r, fi)| *r + *fi * eps).collect();
        let (u1, _) = eval_at(&t, &moved);
        assert!(u1 < u0, "energy should drop along the force direction: {u0} → {u1}");
    }
}
