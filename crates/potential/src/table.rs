//! Tabulated pair potentials: cubic-Hermite interpolation of an arbitrary
//! pair potential, the standard production trick for expensive functional
//! forms (the Vashishta 2-body term costs a `powf` and two `exp`s per pair;
//! a table lookup costs a few flops).

use crate::PairPotential;
use sc_cell::Species;

/// Sampled `(u, du/dr)` knots of one species pair.
type KnotTable = Vec<(f64, f64)>;

/// A pair potential tabulated on a uniform grid with cubic Hermite
/// interpolation.
///
/// Each species pair gets its own `(u, du/dr)` table sampled from the source
/// potential; evaluation interpolates the energy with the matching analytic
/// derivative of the interpolant, so the returned force is *exactly* the
/// derivative of the returned energy — tabulated simulations conserve
/// energy just like analytic ones, merely of a slightly different (and
/// smooth) potential.
pub struct TabulatedPair {
    rcut: f64,
    r_min: f64,
    dr: f64,
    n_species: usize,
    /// `tables[i][j]` = sampled `(u, du)` knots, or `None` when the species
    /// pair does not interact.
    tables: Vec<Vec<Option<KnotTable>>>,
}

impl TabulatedPair {
    /// Tabulates `source` for `n_species` species with `n_points` knots per
    /// pair on `[r_min, cutoff]`. `r_min` guards the hard-core divergence —
    /// pairs closer than `r_min` evaluate at `r_min` (with its repulsive
    /// slope), which production codes likewise clamp.
    pub fn from_potential(
        source: &dyn PairPotential,
        n_species: usize,
        r_min: f64,
        n_points: usize,
    ) -> Self {
        assert!(n_species >= 1 && n_points >= 4);
        let rcut = source.cutoff();
        assert!(r_min > 0.0 && r_min < rcut);
        let dr = (rcut - r_min) / (n_points - 1) as f64;
        let mut tables = vec![vec![None; n_species]; n_species];
        // Index loops keep the (i, j) species-pair symmetry readable.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n_species {
            for j in 0..n_species {
                let (si, sj) = (Species(i as u8), Species(j as u8));
                if !source.applies(si, sj) {
                    continue;
                }
                let knots: KnotTable =
                    (0..n_points).map(|k| source.eval(si, sj, r_min + k as f64 * dr)).collect();
                tables[i][j] = Some(knots);
            }
        }
        TabulatedPair { rcut, r_min, dr, n_species, tables }
    }

    /// Number of knots per table.
    pub fn knots(&self) -> usize {
        self.tables.iter().flatten().flatten().map(Vec::len).next().unwrap_or(0)
    }

    /// Cubic Hermite on segment `[r_k, r_{k+1}]` with knot values and
    /// slopes; returns the interpolated `(u, du)`.
    fn hermite(knots: &[(f64, f64)], r_min: f64, dr: f64, r: f64) -> (f64, f64) {
        let x = (r - r_min) / dr;
        let k = (x.floor() as usize).min(knots.len() - 2);
        let t = x - k as f64;
        let (u0, m0) = knots[k];
        let (u1, m1) = knots[k + 1];
        // Hermite basis (slopes scaled by segment length dr).
        let (m0, m1) = (m0 * dr, m1 * dr);
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        let u = h00 * u0 + h10 * m0 + h01 * u1 + h11 * m1;
        // d/dt of the basis, then /dr for d/dr.
        let dh00 = 6.0 * t2 - 6.0 * t;
        let dh10 = 3.0 * t2 - 4.0 * t + 1.0;
        let dh01 = -6.0 * t2 + 6.0 * t;
        let dh11 = 3.0 * t2 - 2.0 * t;
        let du = (dh00 * u0 + dh10 * m0 + dh01 * u1 + dh11 * m1) / dr;
        (u, du)
    }
}

impl PairPotential for TabulatedPair {
    fn cutoff(&self) -> f64 {
        self.rcut
    }

    fn eval(&self, si: Species, sj: Species, r: f64) -> (f64, f64) {
        let knots = self.tables[si.index()][sj.index()]
            .as_ref()
            .expect("eval called for non-interacting species pair");
        let r = r.max(self.r_min);
        Self::hermite(knots, self.r_min, self.dr, r)
    }

    fn applies(&self, si: Species, sj: Species) -> bool {
        si.index() < self.n_species
            && sj.index() < self.n_species
            && self.tables[si.index()][sj.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LennardJones, Vashishta};

    const S: Species = Species(0);

    #[test]
    fn tabulated_lj_tracks_analytic() {
        let lj = LennardJones::reduced(2.5);
        let tab = TabulatedPair::from_potential(&lj, 1, 0.8, 2000);
        for k in 0..200 {
            let r = 0.85 + k as f64 * (2.45 - 0.85) / 200.0;
            let (ua, da) = lj.eval(S, S, r);
            let (ut, dt) = tab.eval(S, S, r);
            assert!((ua - ut).abs() < 1e-6 * ua.abs().max(1.0), "u at r={r}: {ua} vs {ut}");
            assert!((da - dt).abs() < 1e-4 * da.abs().max(1.0), "du at r={r}: {da} vs {dt}");
        }
    }

    #[test]
    fn interpolant_is_exact_at_knots() {
        let lj = LennardJones::reduced(2.5);
        let tab = TabulatedPair::from_potential(&lj, 1, 0.9, 100);
        let dr = (2.5 - 0.9) / 99.0;
        for k in [0usize, 10, 50, 98] {
            let r = 0.9 + k as f64 * dr;
            let (ua, da) = lj.eval(S, S, r);
            let (ut, dt) = tab.eval(S, S, r);
            assert!((ua - ut).abs() < 1e-12);
            assert!((da - dt).abs() < 1e-9);
        }
    }

    #[test]
    fn force_is_derivative_of_interpolated_energy() {
        // The FD of the *interpolant* must match its own du — energy
        // conservation depends on this, not on agreement with the source.
        let lj = LennardJones::reduced(2.5);
        let tab = TabulatedPair::from_potential(&lj, 1, 0.8, 50); // deliberately coarse
        let h = 1e-6;
        for r in [1.0, 1.3, 1.7, 2.2] {
            let (_, du) = tab.eval(S, S, r);
            let (up, _) = tab.eval(S, S, r + h);
            let (um, _) = tab.eval(S, S, r - h);
            let fd = (up - um) / (2.0 * h);
            assert!((du - fd).abs() < 1e-5 * du.abs().max(1.0), "r={r}: {du} vs FD {fd}");
        }
    }

    #[test]
    fn clamps_below_r_min() {
        let lj = LennardJones::reduced(2.5);
        let tab = TabulatedPair::from_potential(&lj, 1, 0.9, 100);
        let (u_clamped, du_clamped) = tab.eval(S, S, 0.5);
        let (u_min, du_min) = tab.eval(S, S, 0.9);
        assert_eq!(u_clamped, u_min);
        assert_eq!(du_clamped, du_min);
        assert!(du_clamped < 0.0, "clamped slope must stay repulsive");
    }

    #[test]
    fn species_pairs_tabulated_independently() {
        let v = Vashishta::silica();
        let tab = TabulatedPair::from_potential(&v.pair, 2, 1.0, 1500);
        for (a, b) in
            [(Species::SI, Species::SI), (Species::SI, Species::O), (Species::O, Species::O)]
        {
            assert!(tab.applies(a, b));
            for r in [1.6, 2.5, 4.0, 5.0] {
                let (ua, _) = v.pair.eval(a, b, r);
                let (ut, _) = tab.eval(a, b, r);
                assert!(
                    (ua - ut).abs() < 1e-5 * ua.abs().max(1.0),
                    "{a:?}-{b:?} at r={r}: {ua} vs {ut}"
                );
            }
        }
    }
}
