//! Potential traits: the contract between force fields and the UCP engine.

use sc_cell::Species;
use sc_geom::Vec3;

/// A range-limited pair (n = 2) potential.
///
/// The engine guarantees `r < cutoff()` before calling [`PairPotential::eval`].
pub trait PairPotential: Send + Sync {
    /// The pair cutoff `r_cut-2`.
    fn cutoff(&self) -> f64;

    /// Energy and radial derivative at separation `r` for a species pair:
    /// returns `(u, du/dr)`. The engine turns this into forces as
    /// `f_i = -(du/dr)·(r_i - r_j)/r`, `f_j = -f_i`.
    fn eval(&self, si: Species, sj: Species, r: f64) -> (f64, f64);

    /// Whether this potential contributes for the species pair at all.
    /// Defaults to `true`; species-selective fields override it so the
    /// engine can skip tuples early.
    fn applies(&self, _si: Species, _sj: Species) -> bool {
        true
    }
}

/// A range-limited triplet (n = 3) potential over the chain
/// `(r0, r1, r2)` — the *middle* atom is the vertex, and the chain legs
/// `|r1→r0|, |r1→r2|` are both < [`TripletPotential::cutoff`] (the paper's
/// `Γ*(3)` chain-cutoff condition, Eq. 6).
pub trait TripletPotential: Send + Sync {
    /// The triplet cutoff `r_cut-3` (≈ 0.47 · r_cut-2 in the paper's silica
    /// benchmark).
    fn cutoff(&self) -> f64;

    /// Energy and forces for a triplet. `d10 = r0 − r1` and `d12 = r2 − r1`
    /// are minimum-image leg vectors from the vertex. Returns
    /// `(u, f0, f1, f2)` with `f0 + f1 + f2 = 0`.
    fn eval(
        &self,
        s0: Species,
        s1: Species,
        s2: Species,
        d10: Vec3,
        d12: Vec3,
    ) -> (f64, Vec3, Vec3, Vec3);

    /// Whether the species combination interacts (vertex in the middle).
    fn applies(&self, _s0: Species, _s1: Species, _s2: Species) -> bool {
        true
    }
}

/// A range-limited quadruplet (n = 4) potential over the chain
/// `(r0, r1, r2, r3)` with all three consecutive links shorter than
/// [`QuadrupletPotential::cutoff`].
pub trait QuadrupletPotential: Send + Sync {
    /// The quadruplet cutoff `r_cut-4`.
    fn cutoff(&self) -> f64;

    /// Energy and forces for the chain. `d01 = r1 − r0`, `d12 = r2 − r1`,
    /// `d23 = r3 − r2` are minimum-image link vectors. Returns
    /// `(u, [f0, f1, f2, f3])` with the forces summing to zero.
    fn eval(&self, species: [Species; 4], d01: Vec3, d12: Vec3, d23: Vec3) -> (f64, [Vec3; 4]);

    /// Whether the species chain interacts.
    fn applies(&self, _species: [Species; 4]) -> bool {
        true
    }
}

/// One n-body term of a many-body potential-energy function
/// `Φ = Φ₂ + Φ₃ + … + Φ_nmax` (paper Eq. 2). A simulation owns one
/// `NBodyTerm` per n it computes; the engine builds one computation pattern
/// per term and runs the UCP search for each (the paper's per-n force sets
/// `S(n)`).
pub enum NBodyTerm {
    /// A pair term Φ₂.
    Pair(Box<dyn PairPotential>),
    /// A triplet term Φ₃.
    Triplet(Box<dyn TripletPotential>),
    /// A quadruplet term Φ₄.
    Quadruplet(Box<dyn QuadrupletPotential>),
}

impl NBodyTerm {
    /// The tuple order n of the term.
    pub fn n(&self) -> usize {
        match self {
            NBodyTerm::Pair(_) => 2,
            NBodyTerm::Triplet(_) => 3,
            NBodyTerm::Quadruplet(_) => 4,
        }
    }

    /// The term's chain cutoff `r_cut-n`.
    pub fn cutoff(&self) -> f64 {
        match self {
            NBodyTerm::Pair(p) => p.cutoff(),
            NBodyTerm::Triplet(t) => t.cutoff(),
            NBodyTerm::Quadruplet(q) => q.cutoff(),
        }
    }
}

impl std::fmt::Debug for NBodyTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NBodyTerm(n={}, rcut={})", self.n(), self.cutoff())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl PairPotential for Dummy {
        fn cutoff(&self) -> f64 {
            1.5
        }
        fn eval(&self, _: Species, _: Species, r: f64) -> (f64, f64) {
            (r * r, 2.0 * r)
        }
    }

    #[test]
    fn nbody_term_metadata() {
        let t = NBodyTerm::Pair(Box::new(Dummy));
        assert_eq!(t.n(), 2);
        assert_eq!(t.cutoff(), 1.5);
        assert!(format!("{t:?}").contains("n=2"));
    }

    #[test]
    fn default_applies_is_true() {
        assert!(Dummy.applies(Species(0), Species(1)));
    }
}
