//! Finite-difference force validation helpers.
//!
//! Every analytic force in this crate is checked against central finite
//! differences of the energy; the helpers live here (not in `#[cfg(test)]`)
//! so the `sc-md` engine tests can reuse them on whole systems.

use sc_geom::Vec3;

/// Central finite-difference gradient of `energy` with respect to the `i`-th
/// position, where `energy` is a function of a full position list.
pub fn fd_gradient(
    positions: &[Vec3],
    i: usize,
    h: f64,
    mut energy: impl FnMut(&[Vec3]) -> f64,
) -> Vec3 {
    let mut g = Vec3::ZERO;
    let mut work = positions.to_vec();
    for a in 0..3 {
        let orig = work[i][a];
        work[i][a] = orig + h;
        let ep = energy(&work);
        work[i][a] = orig - h;
        let em = energy(&work);
        work[i][a] = orig;
        g[a] = (ep - em) / (2.0 * h);
    }
    g
}

/// Asserts that `analytic_forces[i] ≈ -∂E/∂r_i` for every atom, with
/// relative tolerance `tol` (scaled by the larger of 1 and the force
/// magnitude so near-zero forces are compared absolutely).
///
/// # Panics
/// Panics with a diagnostic message when any component disagrees.
pub fn assert_forces_match(
    positions: &[Vec3],
    analytic_forces: &[Vec3],
    h: f64,
    tol: f64,
    mut energy: impl FnMut(&[Vec3]) -> f64,
) {
    assert_eq!(positions.len(), analytic_forces.len());
    #[allow(clippy::needless_range_loop)]
    for i in 0..positions.len() {
        let fd = -fd_gradient(positions, i, h, &mut energy);
        let fa = analytic_forces[i];
        let scale = fa.norm().max(fd.norm()).max(1.0);
        let err = (fd - fa).norm() / scale;
        assert!(
            err < tol,
            "force mismatch on atom {i}: analytic {fa:?} vs finite-difference {fd:?} (rel err {err:.3e})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_gradient_of_quadratic() {
        // E = |r0|²  ⇒ ∇E = 2 r0.
        let pos = vec![Vec3::new(1.0, -2.0, 0.5)];
        let g = fd_gradient(&pos, 0, 1e-5, |p| p[0].norm_sq());
        assert!((g - pos[0] * 2.0).norm() < 1e-8);
    }

    #[test]
    fn assert_forces_match_accepts_correct_forces() {
        let pos = vec![Vec3::new(0.3, 0.4, 0.5), Vec3::new(1.0, 1.0, 1.0)];
        // E = |r0 - r1|² ⇒ f0 = -2(r0-r1), f1 = +2(r0-r1).
        let d = pos[0] - pos[1];
        let forces = vec![-d * 2.0, d * 2.0];
        assert_forces_match(&pos, &forces, 1e-5, 1e-6, |p| (p[0] - p[1]).norm_sq());
    }

    #[test]
    #[should_panic(expected = "force mismatch")]
    fn assert_forces_match_rejects_wrong_forces() {
        let pos = vec![Vec3::new(0.3, 0.4, 0.5)];
        let forces = vec![Vec3::new(1.0, 0.0, 0.0)];
        assert_forces_match(&pos, &forces, 1e-5, 1e-6, |p| p[0].norm_sq());
    }
}
