//! Stillinger-Weber silicon potential (2- + 3-body).

use crate::vashishta::bond_bend_eval;
use crate::{PairPotential, TripletPotential};
use sc_cell::Species;
use sc_geom::Vec3;
use serde::{Deserialize, Serialize};

/// The Stillinger-Weber potential for silicon
/// [Stillinger & Weber, PRB 31, 5262 (1985)] — a second, independent
/// many-body (pair + triplet) force field exercising exactly the dynamic
/// 2-tuple + 3-tuple computation shape of the paper's silica benchmark, but
/// with a *single* triplet cutoff equal to the pair cutoff (no Hybrid-MD
/// shortcut available), which is the regime where SC's smaller search space
/// matters most.
///
/// Standard parameters (ε in eV, σ in Å):
/// `A = 7.049556277, B = 0.6022245584, p = 4, q = 0, a = 1.8, λ = 21.0,
/// γ = 1.2, ε = 2.1683, σ = 2.0951`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StillingerWeber {
    /// Energy scale ε (eV).
    pub epsilon: f64,
    /// Length scale σ (Å).
    pub sigma: f64,
    /// Reduced cutoff a (cutoff = a·σ).
    pub a: f64,
    /// Two-body prefactor A.
    pub big_a: f64,
    /// Two-body ratio B.
    pub big_b: f64,
    /// Three-body strength λ.
    pub lambda: f64,
    /// Three-body screening γ.
    pub gamma: f64,
}

impl Default for StillingerWeber {
    fn default() -> Self {
        StillingerWeber::silicon()
    }
}

impl StillingerWeber {
    /// The published silicon parameter set.
    pub fn silicon() -> Self {
        StillingerWeber {
            epsilon: 2.1683,
            sigma: 2.0951,
            a: 1.8,
            big_a: 7.049_556_277,
            big_b: 0.602_224_558_4,
            lambda: 21.0,
            gamma: 1.2,
        }
    }

    /// The cutoff distance `a·σ` shared by the pair and triplet terms.
    pub fn rcut(&self) -> f64 {
        self.a * self.sigma
    }
}

impl PairPotential for StillingerWeber {
    fn cutoff(&self) -> f64 {
        self.rcut()
    }

    /// `f₂(r) = A ε [B (σ/r)⁴ − 1] exp(σ / (r − aσ))` for r < aσ. The
    /// exponential screen drives both energy and derivative smoothly to zero
    /// at the cutoff.
    fn eval(&self, _si: Species, _sj: Species, r: f64) -> (f64, f64) {
        let rc = self.rcut();
        if r >= rc {
            return (0.0, 0.0);
        }
        let sr = self.sigma / r;
        let sr4 = sr.powi(4);
        let screen = (self.sigma / (r - rc)).exp();
        let poly = self.big_b * sr4 - 1.0;
        let u = self.big_a * self.epsilon * poly * screen;
        // du/dr = Aε [poly' · screen + poly · screen']
        let dpoly = -4.0 * self.big_b * sr4 / r;
        let dscreen = -self.sigma / ((r - rc) * (r - rc)) * screen;
        let du = self.big_a * self.epsilon * (dpoly * screen + poly * dscreen);
        (u, du)
    }
}

impl TripletPotential for StillingerWeber {
    fn cutoff(&self) -> f64 {
        self.rcut()
    }

    /// `f₃ = λ ε (cos θ + ⅓)² exp(γσ/(r_a − aσ)) exp(γσ/(r_b − aσ))` with
    /// the vertex at the chain middle.
    fn eval(
        &self,
        _s0: Species,
        _s1: Species,
        _s2: Species,
        d10: Vec3,
        d12: Vec3,
    ) -> (f64, Vec3, Vec3, Vec3) {
        let rc = self.rcut();
        let gs = self.gamma * self.sigma;
        bond_bend_eval(self.lambda * self.epsilon, -1.0 / 3.0, d10, d12, |r| {
            if r >= rc {
                (0.0, 0.0)
            } else {
                let z = (gs / (r - rc)).exp();
                (z, -gs / ((r - rc) * (r - rc)) * z)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::assert_forces_match;

    const S: Species = Species::DEFAULT;

    #[test]
    fn pair_minimum_is_binding() {
        let sw = StillingerWeber::silicon();
        // The SW dimer minimum sits near r ≈ 2.35 Å with depth ≈ −ε.
        let (u, du) = PairPotential::eval(&sw, S, S, 2.35);
        assert!(u < -2.0, "dimer energy at 2.35 Å: {u}");
        assert!(du.abs() < 0.3, "near-minimum slope: {du}");
    }

    #[test]
    fn pair_vanishes_at_cutoff() {
        let sw = StillingerWeber::silicon();
        let (u, du) = PairPotential::eval(&sw, S, S, sw.rcut() - 1e-6);
        assert!(u.abs() < 1e-3);
        assert!(du.abs() < 1.0); // screened to ~0, not divergent
        let (u2, du2) = PairPotential::eval(&sw, S, S, sw.rcut() + 0.1);
        assert_eq!((u2, du2), (0.0, 0.0));
    }

    #[test]
    fn pair_forces_match_finite_differences() {
        let sw = StillingerWeber::silicon();
        for r in [2.0, 2.35, 2.8, 3.3] {
            let pos = vec![Vec3::ZERO, Vec3::new(r, 0.0, 0.0)];
            let d = pos[1] - pos[0];
            let (_, du) = PairPotential::eval(&sw, S, S, d.norm());
            let f1 = -(du / d.norm()) * d;
            assert_forces_match(&pos, &[-f1, f1], 1e-6, 1e-5, |p| {
                PairPotential::eval(&sw, S, S, (p[1] - p[0]).norm()).0
            });
        }
    }

    #[test]
    fn triplet_prefers_tetrahedral_angle() {
        let sw = StillingerWeber::silicon();
        let ra = 2.35;
        let angle_energy = |theta: f64| {
            let d10 = Vec3::new(ra, 0.0, 0.0);
            let d12 = Vec3::new(ra * theta.cos(), ra * theta.sin(), 0.0);
            TripletPotential::eval(&sw, S, S, S, d10, d12).0
        };
        let tetra = (-1.0f64 / 3.0).acos();
        assert!(angle_energy(tetra) < 1e-12);
        assert!(angle_energy(tetra + 0.3) > 0.0);
        assert!(angle_energy(tetra - 0.3) > 0.0);
    }

    #[test]
    fn triplet_forces_match_finite_differences() {
        let sw = StillingerWeber::silicon();
        let r1 = Vec3::ZERO;
        let r0 = Vec3::new(2.3, 0.2, -0.1);
        let r2 = Vec3::new(-0.8, 2.2, 0.4);
        let pos = vec![r0, r1, r2];
        let (_, f0, f1, f2) = TripletPotential::eval(&sw, S, S, S, r0 - r1, r2 - r1);
        assert!((f0 + f1 + f2).norm() < 1e-12);
        assert_forces_match(&pos, &[f0, f1, f2], 1e-6, 1e-5, |p| {
            TripletPotential::eval(&sw, S, S, S, p[0] - p[1], p[2] - p[1]).0
        });
    }

    #[test]
    fn single_cutoff_for_both_terms() {
        let sw = StillingerWeber::silicon();
        assert_eq!(PairPotential::cutoff(&sw), TripletPotential::cutoff(&sw));
    }
}
