//! Vashishta-form silica potential: the paper's benchmark application.
//!
//! The SC'13 performance study (§5) runs MD of silica (SiO₂) with the
//! Vashishta interaction [Vashishta, Kalia, Rino, Ebbsjö, PRB 41, 12197
//! (1990)]: a 2-body term (steric repulsion, screened Coulomb,
//! charge–dipole) plus a 3-body bond-bending term, with the triplet cutoff
//! roughly 0.47× the pair cutoff. That cutoff ratio is the property the
//! Hybrid-MD baseline exploits, so we keep it exactly:
//! `r_cut-3 / r_cut-2 = 2.6 Å / 5.5 Å ≈ 0.4727`.
//!
//! **Substitution note (see DESIGN.md):** the parameter *values* below are
//! representative — same functional form, same cutoffs, same species
//! structure, magnitudes chosen to give a stable ionic liquid — not the
//! published silica fit. The enumeration/communication behaviour the paper
//! benchmarks depends only on the cutoffs and densities, which we preserve;
//! force correctness is established against finite differences of this
//! energy, whatever the constants.

use crate::{PairPotential, TripletPotential};
use sc_cell::Species;
use sc_geom::Vec3;
use serde::{Deserialize, Serialize};

/// Parameters of the Vashishta-form potential for a two-species (Si, O)
/// system. Pair matrices are symmetric, indexed `[species_i][species_j]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VashishtaParams {
    /// Pair cutoff `r_cut-2` (Å).
    pub rcut2: f64,
    /// Triplet cutoff `r_cut-3` (Å); also the screening pole `r0` of the
    /// 3-body term, so the term vanishes smoothly at the cutoff.
    pub rcut3: f64,
    /// Effective charges Z (e) per species.
    pub z: [f64; 2],
    /// Coulomb constant (eV·Å·e⁻²).
    pub coulomb_k: f64,
    /// Debye screening length λ (Å) of the Coulomb term.
    pub lambda: f64,
    /// Screening length ξ (Å) of the charge–dipole term.
    pub xi: f64,
    /// Steric repulsion strengths H (eV·Å^η).
    pub h: [[f64; 2]; 2],
    /// Steric repulsion exponents η.
    pub eta: [[f64; 2]; 2],
    /// Charge–dipole strengths D (eV·Å⁴).
    pub d: [[f64; 2]; 2],
    /// Van der Waals strengths W (eV·Å⁶).
    pub w: [[f64; 2]; 2],
    /// Bond-bending strengths B (eV), indexed `[leg0][vertex][leg2]`;
    /// zero = no interaction for that species combination.
    pub b: [[[f64; 2]; 2]; 2],
    /// Preferred cosines cos θ̄ per `[leg0][vertex][leg2]`.
    pub cos0: [[[f64; 2]; 2]; 2],
    /// Screening strength γ (Å) of the 3-body radial factors.
    pub gamma: f64,
    /// Masses per species (amu) — convenience for building stores.
    pub masses: [f64; 2],
}

impl VashishtaParams {
    /// Representative silica-like parameters with the paper's cutoff ratio.
    pub fn silica() -> Self {
        let si = Species::SI.index();
        let o = Species::O.index();
        let mut b = [[[0.0; 2]; 2]; 2];
        let mut cos0 = [[[0.0; 2]; 2]; 2];
        // O–Si–O bending: tetrahedral angle.
        b[o][si][o] = 4.993;
        cos0[o][si][o] = -1.0 / 3.0;
        // Si–O–Si bending: ~141°.
        b[si][o][si] = 19.972;
        cos0[si][o][si] = (141.0f64).to_radians().cos();
        VashishtaParams {
            rcut2: 5.5,
            rcut3: 2.6,
            z: [1.2, -0.6],
            coulomb_k: 14.399645,
            lambda: 4.43,
            xi: 2.5,
            h: [[23.0, 160.0], [160.0, 350.0]],
            eta: [[11.0, 9.0], [9.0, 7.0]],
            d: [[0.0, 3.456], [3.456, 1.728]],
            w: [[0.0; 2]; 2],
            b,
            cos0,
            gamma: 1.0,
            masses: [28.0855, 15.999],
        }
    }
}

/// The 2-body part of the Vashishta potential, truncated and shifted at
/// `rcut2`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VashishtaPair {
    params: VashishtaParams,
    shift: [[f64; 2]; 2],
}

impl VashishtaPair {
    /// Builds the pair term, precomputing the energy shifts at the cutoff.
    pub fn new(params: VashishtaParams) -> Self {
        let mut pair = VashishtaPair { params, shift: [[0.0; 2]; 2] };
        for i in 0..2 {
            for j in 0..2 {
                pair.shift[i][j] = pair.raw_energy(i, j, pair.params.rcut2);
            }
        }
        pair
    }

    fn raw_energy(&self, i: usize, j: usize, r: f64) -> f64 {
        let p = &self.params;
        let qq = p.coulomb_k * p.z[i] * p.z[j];
        p.h[i][j] / r.powf(p.eta[i][j]) + qq * (-r / p.lambda).exp() / r
            - p.d[i][j] * (-r / p.xi).exp() / r.powi(4)
            - p.w[i][j] / r.powi(6)
    }

    fn raw_derivative(&self, i: usize, j: usize, r: f64) -> f64 {
        let p = &self.params;
        let qq = p.coulomb_k * p.z[i] * p.z[j];
        let eta = p.eta[i][j];
        let e_l = (-r / p.lambda).exp();
        let e_x = (-r / p.xi).exp();
        -eta * p.h[i][j] / r.powf(eta + 1.0)
            + qq * e_l * (-1.0 / (p.lambda * r) - 1.0 / (r * r))
            + p.d[i][j] * e_x * (1.0 / (p.xi * r.powi(4)) + 4.0 / r.powi(5))
            + 6.0 * p.w[i][j] / r.powi(7)
    }
}

impl PairPotential for VashishtaPair {
    fn cutoff(&self) -> f64 {
        self.params.rcut2
    }

    fn eval(&self, si: Species, sj: Species, r: f64) -> (f64, f64) {
        let (i, j) = (si.index(), sj.index());
        debug_assert!(i < 2 && j < 2, "Vashishta is a two-species potential");
        (self.raw_energy(i, j, r) - self.shift[i][j], self.raw_derivative(i, j, r))
    }
}

/// The 3-body bond-bending part of the Vashishta potential:
/// `U = B · ζ(r_a) ζ(r_b) · (cos θ − cos θ̄)²` with the screening factor
/// `ζ(r) = exp(γ / (r − r0))` for `r < r0` (and 0 beyond), so both the
/// energy and forces vanish smoothly at the triplet cutoff.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VashishtaTriplet {
    params: VashishtaParams,
}

impl VashishtaTriplet {
    /// Builds the triplet term.
    pub fn new(params: VashishtaParams) -> Self {
        VashishtaTriplet { params }
    }
}

/// Shared bond-bending evaluation: vertex atom at index 1 of the chain,
/// legs `d10 = r0 − r1`, `d12 = r2 − r1`. Returns `(u, f0, f1, f2)`.
///
/// `screen(r) → (ζ, dζ/dr)` must be zero at and beyond the cutoff.
pub(crate) fn bond_bend_eval(
    prefactor: f64,
    cos0: f64,
    d10: Vec3,
    d12: Vec3,
    mut screen: impl FnMut(f64) -> (f64, f64),
) -> (f64, Vec3, Vec3, Vec3) {
    let ra = d10.norm();
    let rb = d12.norm();
    let (za, dza) = screen(ra);
    let (zb, dzb) = screen(rb);
    if za == 0.0 || zb == 0.0 {
        return (0.0, Vec3::ZERO, Vec3::ZERO, Vec3::ZERO);
    }
    let cos_t = d10.dot(d12) / (ra * rb);
    let delta = cos_t - cos0;
    let g = delta * delta;
    let dg = 2.0 * delta;
    let u = prefactor * za * zb * g;
    // ∂U/∂ra, ∂U/∂rb, ∂U/∂cosθ
    let du_ra = prefactor * dza * zb * g;
    let du_rb = prefactor * za * dzb * g;
    let du_cos = prefactor * za * zb * dg;
    // Gradients of cosθ wrt the two endpoint atoms.
    let grad0_cos = d12 / (ra * rb) - d10 * (cos_t / (ra * ra));
    let grad2_cos = d10 / (ra * rb) - d12 * (cos_t / (rb * rb));
    let f0 = -(d10 * (du_ra / ra) + grad0_cos * du_cos);
    let f2 = -(d12 * (du_rb / rb) + grad2_cos * du_cos);
    let f1 = -(f0 + f2);
    (u, f0, f1, f2)
}

impl TripletPotential for VashishtaTriplet {
    fn cutoff(&self) -> f64 {
        self.params.rcut3
    }

    fn eval(
        &self,
        s0: Species,
        s1: Species,
        s2: Species,
        d10: Vec3,
        d12: Vec3,
    ) -> (f64, Vec3, Vec3, Vec3) {
        let (a, v, b) = (s0.index(), s1.index(), s2.index());
        let bb = self.params.b[a][v][b];
        if bb == 0.0 {
            return (0.0, Vec3::ZERO, Vec3::ZERO, Vec3::ZERO);
        }
        let cos0 = self.params.cos0[a][v][b];
        let gamma = self.params.gamma;
        let r0 = self.params.rcut3;
        bond_bend_eval(bb, cos0, d10, d12, |r| {
            if r >= r0 {
                (0.0, 0.0)
            } else {
                let z = (gamma / (r - r0)).exp();
                (z, -gamma / ((r - r0) * (r - r0)) * z)
            }
        })
    }

    fn applies(&self, s0: Species, s1: Species, s2: Species) -> bool {
        self.params.b[s0.index()][s1.index()][s2.index()] != 0.0
    }
}

/// The combined Vashishta potential: pair + triplet terms sharing one
/// parameter set.
#[derive(Debug, Clone)]
pub struct Vashishta {
    /// The 2-body term.
    pub pair: VashishtaPair,
    /// The 3-body term.
    pub triplet: VashishtaTriplet,
}

impl Vashishta {
    /// Builds the combined potential from parameters.
    pub fn new(params: VashishtaParams) -> Self {
        Vashishta {
            pair: VashishtaPair::new(params.clone()),
            triplet: VashishtaTriplet::new(params),
        }
    }

    /// The representative silica-like system of the paper's benchmarks.
    pub fn silica() -> Self {
        Vashishta::new(VashishtaParams::silica())
    }

    /// The parameters (shared by both terms).
    pub fn params(&self) -> &VashishtaParams {
        &self.triplet.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::assert_forces_match;

    const SI: Species = Species::SI;
    const O: Species = Species::O;

    #[test]
    fn cutoff_ratio_matches_paper() {
        let p = VashishtaParams::silica();
        let ratio = p.rcut3 / p.rcut2;
        assert!((ratio - 0.47).abs() < 0.01, "rcut3/rcut2 = {ratio}, paper says ≈ 0.47");
    }

    #[test]
    fn pair_energy_shifted_to_zero_at_cutoff() {
        let v = Vashishta::silica();
        for (a, b) in [(SI, SI), (SI, O), (O, O)] {
            let (u, _) = v.pair.eval(a, b, v.pair.cutoff() - 1e-9);
            assert!(u.abs() < 1e-6, "{a:?}-{b:?} pair energy at cutoff: {u}");
        }
    }

    #[test]
    fn si_o_pair_is_binding() {
        let v = Vashishta::silica();
        // Somewhere in the bonding range the Si–O pair energy must be
        // negative (Coulomb attraction beats steric repulsion).
        let found = (80..300).map(|i| i as f64 * 0.01).any(|r| v.pair.eval(SI, O, r).0 < -0.5);
        assert!(found, "Si-O pair never binds — parameters are broken");
        // While O–O is repulsive at short range.
        assert!(v.pair.eval(O, O, 1.5).0 > 0.0);
    }

    #[test]
    fn pair_forces_match_finite_differences() {
        let v = Vashishta::silica();
        for (a, b) in [(SI, SI), (SI, O), (O, O)] {
            for r in [1.4, 1.62, 2.0, 3.0, 4.5] {
                let pos = vec![sc_geom::Vec3::ZERO, sc_geom::Vec3::new(r, 0.0, 0.0)];
                let d = pos[1] - pos[0];
                let (_, du) = v.pair.eval(a, b, d.norm());
                let f1 = -(du / d.norm()) * d;
                assert_forces_match(&pos, &[-f1, f1], 1e-6, 1e-5, |p| {
                    v.pair.eval(a, b, (p[1] - p[0]).norm()).0
                });
            }
        }
    }

    #[test]
    fn triplet_applies_only_to_bonded_combinations() {
        let v = Vashishta::silica();
        assert!(v.triplet.applies(O, SI, O));
        assert!(v.triplet.applies(SI, O, SI));
        assert!(!v.triplet.applies(SI, SI, SI));
        assert!(!v.triplet.applies(O, O, O));
        assert!(!v.triplet.applies(SI, SI, O));
    }

    #[test]
    fn triplet_energy_zero_at_preferred_angle() {
        let v = Vashishta::silica();
        // O-Si-O at exactly the tetrahedral angle: cosθ = −1/3 ⇒ U = 0,
        // and the angular force component vanishes.
        let ra = 1.6;
        let cos0: f64 = -1.0 / 3.0;
        let sin0 = (1.0 - cos0 * cos0).sqrt();
        let d10 = sc_geom::Vec3::new(ra, 0.0, 0.0);
        let d12 = sc_geom::Vec3::new(ra * cos0, ra * sin0, 0.0);
        let (u, f0, f1, f2) = v.triplet.eval(O, SI, O, d10, d12);
        assert!(u.abs() < 1e-12);
        assert!(f0.norm() < 1e-12 && f1.norm() < 1e-12 && f2.norm() < 1e-12);
    }

    #[test]
    fn triplet_vanishes_at_cutoff() {
        let v = Vashishta::silica();
        let d10 = sc_geom::Vec3::new(2.61, 0.0, 0.0); // beyond rcut3
        let d12 = sc_geom::Vec3::new(0.0, 1.6, 0.0);
        let (u, f0, ..) = v.triplet.eval(O, SI, O, d10, d12);
        assert_eq!(u, 0.0);
        assert_eq!(f0, sc_geom::Vec3::ZERO);
    }

    #[test]
    fn triplet_forces_match_finite_differences() {
        let v = Vashishta::silica();
        // A bent O-Si-O triplet away from the preferred angle.
        let r1 = sc_geom::Vec3::new(0.0, 0.0, 0.0); // Si vertex
        let r0 = sc_geom::Vec3::new(1.55, 0.1, -0.2); // O
        let r2 = sc_geom::Vec3::new(-0.4, 1.5, 0.3); // O
        let pos = vec![r0, r1, r2];
        let (_, f0, f1, f2) = v.triplet.eval(O, SI, O, r0 - r1, r2 - r1);
        assert_forces_match(&pos, &[f0, f1, f2], 1e-6, 1e-5, |p| {
            v.triplet.eval(O, SI, O, p[0] - p[1], p[2] - p[1]).0
        });
    }

    #[test]
    fn triplet_forces_sum_to_zero() {
        let v = Vashishta::silica();
        let d10 = sc_geom::Vec3::new(1.5, 0.3, -0.1);
        let d12 = sc_geom::Vec3::new(-0.2, 1.4, 0.5);
        let (_, f0, f1, f2) = v.triplet.eval(O, SI, O, d10, d12);
        assert!((f0 + f1 + f2).norm() < 1e-12);
    }

    #[test]
    fn combined_accessors() {
        let v = Vashishta::silica();
        assert_eq!(v.params().masses.len(), 2);
        assert!(v.pair.cutoff() > v.triplet.cutoff());
    }
}
