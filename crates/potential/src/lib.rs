//! # sc-potential — many-body interatomic potentials
//!
//! The force fields that drive the n-tuple computation benchmarks:
//!
//! * [`LennardJones`] — the classic pair (n = 2) potential, used by the
//!   quickstart example and the pair-only correctness tests.
//! * [`Vashishta`] — a Vashishta-*form* silica (SiO₂) potential with 2-body
//!   (steric repulsion + screened Coulomb + charge–dipole) and 3-body
//!   (bond-bending) terms. This is the paper's benchmark application (§5):
//!   dynamic pair **and** triplet computation with `r_cut3/r_cut2 ≈ 0.47`.
//!   Parameters are representative, not a silica fit — see
//!   [`VashishtaParams`] for the substitution note.
//! * [`StillingerWeber`] — the standard Si potential (2- + 3-body), a second
//!   independent many-body force field.
//! * [`TorsionToy`] — a smooth 4-body chain-alignment potential exercising
//!   the n = 4 enumeration path that reactive force fields (ReaxFF, §1)
//!   motivate.
//!
//! ## Conventions
//!
//! Potentials are pure functions of *minimum-image displacement vectors*
//! supplied by the caller (the MD engine), so they know nothing about
//! periodic boxes or cell lattices. Every `eval` returns the tuple energy
//! together with the analytic force on each participating atom; the test
//! suite verifies each force against central finite differences of the
//! energy, and verifies that each tuple's forces sum to zero (Newton's third
//! law at tuple granularity — the property that makes undirected tuple
//! enumeration valid, paper §2.1).

#![warn(missing_docs)]

mod lj;
mod sw;
mod table;
mod torsion;
mod traits;
mod vashishta;

pub mod fd;

pub use lj::LennardJones;
pub use sw::StillingerWeber;
pub use table::TabulatedPair;
pub use torsion::TorsionToy;
pub use traits::{NBodyTerm, PairPotential, QuadrupletPotential, TripletPotential};
pub use vashishta::{Vashishta, VashishtaPair, VashishtaParams, VashishtaTriplet};
