//! # sc-serve — the multi-tenant simulation job service
//!
//! A long-lived daemon (`scmd serve`) that accepts scenario specs
//! ([`sc_spec::ScenarioSpec`]) as jobs, multiplexes many concurrent
//! simulations over a bounded set of worker lanes with fair round-robin
//! scheduling, persists per-job checkpoints so jobs survive a daemon
//! restart (`serve --resume`), and answers a JSON-lines protocol over a
//! local Unix socket (`scmd submit/status/cancel/results`).

pub mod job;
pub mod protocol;
pub mod scheduler;

pub mod client;
pub mod daemon;

pub use daemon::{Daemon, DaemonConfig};
pub use job::{JobId, JobRecord, JobState};
pub use protocol::{Request, Response};
pub use scheduler::{Scheduler, SchedulerConfig, SubmitError};
