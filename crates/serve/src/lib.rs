//! # sc-serve — the multi-tenant simulation job service
//!
//! A long-lived daemon (`scmd serve`) that accepts scenario specs
//! ([`sc_spec::ScenarioSpec`]) as jobs, multiplexes many concurrent
//! simulations over a bounded set of worker lanes with fair round-robin
//! scheduling, persists per-job checkpoints so jobs survive a daemon
//! restart (`serve --resume`), and answers a JSON-lines protocol over a
//! local Unix socket (`scmd submit/status/cancel/results`).
//!
//! The live telemetry plane rides the same socket: `scmd watch` streams
//! a running job's periodic telemetry snapshots (bounded per-subscriber
//! queues, drop-oldest under backpressure), `scmd dump` snapshots a
//! running job's flight-recorder trace ring, and the `Metrics` verb (or
//! the optional `--metrics-addr` TCP listener) exports daemon- and
//! job-level metrics in Prometheus text exposition format.

pub mod job;
pub mod metrics;
pub mod protocol;
pub mod scheduler;
pub mod watch;

pub mod client;
pub mod daemon;

pub use daemon::{Daemon, DaemonConfig};
pub use job::{JobId, JobRecord, JobState};
pub use metrics::{exposition, BuildInfo};
pub use protocol::{Request, Response};
pub use scheduler::{DumpError, Scheduler, SchedulerConfig, SubmitError, TraceDump, WatchError};
pub use watch::{WatchEvent, WatchHandle};
