//! The daemon-level metrics registry and the merged Prometheus export.
//!
//! The scheduler reports service health — queue depth, admissions and
//! backpressure rejections, lane utilization, per-state job gauges, a
//! slice-duration histogram, and journal/checkpoint write counters —
//! into one unlabeled [`Registry`]. The export surface
//! ([`exposition`]) merges that daemon snapshot with every job's own
//! registry snapshot: per-job series carry the `job` label (stamped by
//! `Registry::labeled` at admission) plus a `tenant` label (the spec
//! name), so one scrape distinguishes the service from its tenants.

use sc_obs::{prometheus_with_labels, Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use std::fmt::Write as _;

/// Slice-duration histogram bucket upper bounds, in milliseconds.
const SLICE_MS_BOUNDS: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0];

/// Pre-registered handles into the daemon's service registry.
pub(crate) struct DaemonMetrics {
    pub registry: Registry,
    /// Jobs accepted by `submit` (admissions).
    pub submitted: Counter,
    /// Submissions rejected with `queue-full` backpressure.
    pub rejected: Counter,
    /// Scheduling slices completed across all lanes.
    pub slices: Counter,
    /// Manifest (journal) writes to the state directory.
    pub manifests: Counter,
    /// Labelled checkpoint writes to the state directory.
    pub checkpoints: Counter,
    /// Telemetry snapshots fanned out to watch subscribers.
    pub watch_snapshots: Counter,
    /// Watch snapshots dropped to per-subscriber queue overflow.
    pub watch_dropped: Counter,
    /// Live (queued + running) jobs.
    pub queue_depth: Gauge,
    /// Per-state job gauges.
    pub jobs_queued: Gauge,
    pub jobs_running: Gauge,
    pub jobs_done: Gauge,
    pub jobs_failed: Gauge,
    pub jobs_cancelled: Gauge,
    /// Configured lane count and lanes with at least one resident job.
    pub lanes_total: Gauge,
    pub lanes_busy: Gauge,
    /// Wall milliseconds per completed scheduling slice.
    pub slice_ms: Histogram,
}

impl DaemonMetrics {
    pub(crate) fn new() -> DaemonMetrics {
        let registry = Registry::new();
        DaemonMetrics {
            submitted: registry.counter("serve.jobs.submitted.total"),
            rejected: registry.counter("serve.backpressure.rejected.total"),
            slices: registry.counter("serve.slices.total"),
            manifests: registry.counter("serve.manifests.written.total"),
            checkpoints: registry.counter("serve.checkpoints.written.total"),
            watch_snapshots: registry.counter("serve.watch.snapshots.total"),
            watch_dropped: registry.counter("serve.watch.dropped.total"),
            queue_depth: registry.gauge("serve.queue.depth"),
            jobs_queued: registry.gauge("serve.jobs.queued"),
            jobs_running: registry.gauge("serve.jobs.running"),
            jobs_done: registry.gauge("serve.jobs.done"),
            jobs_failed: registry.gauge("serve.jobs.failed"),
            jobs_cancelled: registry.gauge("serve.jobs.cancelled"),
            lanes_total: registry.gauge("serve.lanes.total"),
            lanes_busy: registry.gauge("serve.lanes.busy"),
            slice_ms: registry.histogram("serve.slice.duration.ms", SLICE_MS_BOUNDS),
            registry,
        }
    }
}

/// Build identity stamped on the `scmd_build_info` gauge.
#[derive(Debug, Clone)]
pub struct BuildInfo {
    /// Crate version (`CARGO_PKG_VERSION`).
    pub version: String,
    /// Short git SHA of the serving binary's checkout (or `unknown`).
    pub git_sha: String,
}

impl BuildInfo {
    /// The current build: workspace version plus the checkout's short
    /// git SHA (resolved at runtime; `unknown` outside a git checkout).
    pub fn current() -> BuildInfo {
        BuildInfo { version: env!("CARGO_PKG_VERSION").to_string(), git_sha: git_sha() }
    }
}

/// Short git SHA of the working directory's checkout, or `unknown`.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Renders the merged Prometheus text exposition: the `scmd_build_info`
/// gauge, the daemon's service snapshot, then each job snapshot with its
/// `job` label (from the labeled registry) and a `tenant` label (the
/// spec name). `# HELP` / `# TYPE` headers are emitted once per metric
/// family across the whole document, as the exposition format requires.
pub fn exposition(
    daemon: &MetricsSnapshot,
    jobs: &[(MetricsSnapshot, String)],
    build: &BuildInfo,
) -> String {
    let mut out = String::new();
    out.push_str("# HELP scmd_build_info Build identity of the serving scmd binary.\n");
    out.push_str("# TYPE scmd_build_info gauge\n");
    let _ = writeln!(
        out,
        "scmd_build_info{{version=\"{}\",git_sha=\"{}\"}} 1",
        build.version, build.git_sha
    );
    let mut seen_help = std::collections::HashSet::new();
    let mut seen_type = std::collections::HashSet::new();
    let mut append = |out: &mut String, text: &str| {
        for line in text.lines() {
            // "# HELP <family> ..." / "# TYPE <family> ...": keep the
            // first occurrence of each family's header only.
            let keep = match (line.strip_prefix("# HELP "), line.strip_prefix("# TYPE ")) {
                (Some(rest), _) => rest
                    .split_whitespace()
                    .next()
                    .is_none_or(|family| seen_help.insert(family.to_string())),
                (_, Some(rest)) => rest
                    .split_whitespace()
                    .next()
                    .is_none_or(|family| seen_type.insert(family.to_string())),
                _ => true,
            };
            if keep {
                out.push_str(line);
                out.push('\n');
            }
        }
    };
    append(&mut out, &prometheus_with_labels(daemon, &[]));
    for (snap, tenant) in jobs {
        append(&mut out, &prometheus_with_labels(snap, &[("tenant", tenant)]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden exposition: build info first, daemon series unlabeled, job
    /// series under `job`/`tenant` labels, headers deduplicated.
    #[test]
    fn exposition_merges_daemon_and_job_snapshots_golden() {
        let daemon = DaemonMetrics::new();
        daemon.submitted.add(3);
        daemon.queue_depth.set(2.0);
        let job = Registry::labeled("job-0");
        job.counter("sim.steps").add(7);
        let build = BuildInfo { version: "1.2.3".to_string(), git_sha: "abc1234".to_string() };
        let text = exposition(
            &daemon.registry.snapshot(),
            &[(job.snapshot(), "lj-melt".to_string())],
            &build,
        );
        for needle in [
            "# HELP scmd_build_info Build identity of the serving scmd binary.\n\
             # TYPE scmd_build_info gauge\n\
             scmd_build_info{version=\"1.2.3\",git_sha=\"abc1234\"} 1\n",
            "# TYPE serve_jobs_submitted_total counter\nserve_jobs_submitted_total 3\n",
            "serve_queue_depth 2\n",
            "# TYPE sim_steps counter\nsim_steps{job=\"job-0\",tenant=\"lj-melt\"} 7\n",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Exactly one header pair per family across the whole document.
        let type_lines: Vec<&str> =
            text.lines().filter(|l| l.starts_with("# TYPE sc_phase_seconds_total")).collect();
        assert_eq!(type_lines.len(), 1, "duplicated family headers:\n{text}");
    }

    #[test]
    fn build_info_resolves_a_version() {
        let b = BuildInfo::current();
        assert!(!b.version.is_empty());
        assert!(!b.git_sha.is_empty());
    }
}
