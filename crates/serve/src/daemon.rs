//! The `scmd serve` daemon: a JSON-lines request loop over a local Unix
//! socket, multiplexing clients onto the [`Scheduler`].

use crate::job::JobId;
use crate::protocol::{Request, Response};
use crate::scheduler::{Scheduler, SchedulerConfig, SubmitError};
use sc_obs::json::Json;
use sc_spec::ScenarioSpec;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The Unix socket path clients connect to.
    pub socket: PathBuf,
    /// Scheduler policy (lanes, capacity, slice, state directory).
    pub scheduler: SchedulerConfig,
    /// Reload persisted jobs from the state directory on startup.
    pub resume: bool,
}

/// A bound, running job service.
pub struct Daemon {
    scheduler: Scheduler,
    listener: UnixListener,
    socket: PathBuf,
}

impl Daemon {
    /// Starts the scheduler and binds the socket. A stale socket file
    /// from a killed daemon is replaced; a live one (something answers a
    /// connect) is an error.
    ///
    /// # Errors
    /// Socket binding or state-directory I/O problems, or another daemon
    /// already serving on the path.
    pub fn bind(cfg: DaemonConfig) -> std::io::Result<Daemon> {
        if cfg.socket.exists() {
            if UnixStream::connect(&cfg.socket).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving on {}", cfg.socket.display()),
                ));
            }
            std::fs::remove_file(&cfg.socket)?;
        }
        if let Some(parent) = cfg.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let scheduler = Scheduler::new(cfg.scheduler, cfg.resume)?;
        let listener = UnixListener::bind(&cfg.socket)?;
        Ok(Daemon { scheduler, listener, socket: cfg.socket })
    }

    /// Jobs currently in the table (any state) — startup reporting.
    pub fn job_count(&self) -> usize {
        self.scheduler.list().len()
    }

    /// Serves connections until a client sends `shutdown`, then parks
    /// in-flight jobs resumably and removes the socket.
    ///
    /// # Errors
    /// Accept-loop I/O failures (per-connection errors only drop that
    /// connection).
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            if let Ok(true) = serve_connection(stream, &self.scheduler) {
                break;
            }
        }
        let _ = std::fs::remove_file(&self.socket);
        self.scheduler.shutdown();
        Ok(())
    }
}

/// Handles one client connection; returns whether shutdown was requested.
fn serve_connection(stream: UnixStream, scheduler: &Scheduler) -> std::io::Result<bool> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (resp, stop) = handle_line(&line, scheduler);
        writer.write_all(resp.to_json().to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if stop {
            return Ok(true);
        }
    }
    Ok(false)
}

fn bad_request(message: impl Into<String>) -> Response {
    Response::Error { code: "bad-request".to_string(), message: message.into() }
}

/// Routes one request line; returns the response and whether the daemon
/// should stop.
pub fn handle_line(line: &str, scheduler: &Scheduler) -> (Response, bool) {
    let req =
        match Json::parse(line).map_err(|e| e.to_string()).and_then(|doc| Request::from_json(&doc))
        {
            Ok(req) => req,
            Err(e) => return (bad_request(e), false),
        };
    let resp = match req {
        Request::Ping => Response::Pong { jobs: scheduler.list().len() as u64 },
        Request::Submit { spec } => match ScenarioSpec::from_json(&spec) {
            Ok(spec) => match scheduler.submit(spec) {
                Ok(id) => Response::Submitted { id: id.to_string() },
                Err(e) => Response::Error {
                    code: match &e {
                        SubmitError::QueueFull { .. } => "queue-full",
                        SubmitError::Spec(_) => "bad-spec",
                        SubmitError::Unservable(_) => "unservable",
                        SubmitError::ShuttingDown => "shutting-down",
                    }
                    .to_string(),
                    message: e.to_string(),
                },
            },
            Err(e) => Response::Error { code: "bad-spec".to_string(), message: e.to_string() },
        },
        Request::Status { id: None } => {
            Response::Status { jobs: scheduler.list().iter().map(|r| r.to_json()).collect() }
        }
        Request::Status { id: Some(id) } => match parse_id(&id) {
            Err(resp) => resp,
            Ok(id) => match scheduler.status(id) {
                Some(record) => Response::Status { jobs: vec![record.to_json()] },
                None => unknown_job(id),
            },
        },
        Request::Cancel { id } => match parse_id(&id) {
            Err(resp) => resp,
            Ok(id) => {
                if scheduler.cancel(id) {
                    Response::Cancelled { id: id.to_string() }
                } else if scheduler.status(id).is_some() {
                    Response::Error {
                        code: "not-cancellable".to_string(),
                        message: format!("{id} is already terminal"),
                    }
                } else {
                    unknown_job(id)
                }
            }
        },
        Request::Results { id } => match parse_id(&id) {
            Err(resp) => resp,
            Ok(id) => match (scheduler.status(id), scheduler.results(id)) {
                (Some(_), Some(doc)) => Response::Results { id: id.to_string(), doc },
                (Some(record), None) => Response::Error {
                    code: "not-done".to_string(),
                    message: format!(
                        "{id} is {} ({}/{} steps)",
                        record.state, record.steps_done, record.total_steps
                    ),
                },
                (None, _) => unknown_job(id),
            },
        },
        Request::Shutdown => return (Response::ShuttingDown, true),
    };
    (resp, false)
}

fn parse_id(id: &str) -> Result<JobId, Response> {
    JobId::parse(id).ok_or_else(|| bad_request(format!("'{id}' is not a job-<n> id")))
}

fn unknown_job(id: JobId) -> Response {
    Response::Error { code: "unknown-job".to_string(), message: format!("no such job {id}") }
}
