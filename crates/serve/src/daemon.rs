//! The `scmd serve` daemon: a JSON-lines request loop over a local Unix
//! socket, multiplexing clients onto the [`Scheduler`].
//!
//! Each accepted connection gets its own thread, so a client streaming a
//! `watch` subscription (the one verb that holds its connection open)
//! never blocks submissions or status queries from other clients. An
//! optional TCP listener ([`DaemonConfig::metrics_addr`]) serves the
//! merged daemon + per-job Prometheus text exposition over plain HTTP
//! for scrapers that do not speak the socket protocol.

use crate::job::JobId;
use crate::metrics::{exposition, BuildInfo};
use crate::protocol::{Request, Response};
use crate::scheduler::{DumpError, Scheduler, SchedulerConfig, SubmitError, WatchError};
use crate::watch::WatchEvent;
use sc_obs::json::Json;
use sc_spec::ScenarioSpec;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The Unix socket path clients connect to.
    pub socket: PathBuf,
    /// Scheduler policy (lanes, capacity, slice, state directory).
    pub scheduler: SchedulerConfig,
    /// Reload persisted jobs from the state directory on startup.
    pub resume: bool,
    /// Optional TCP address (e.g. `127.0.0.1:9184`; port `0` picks a free
    /// one) serving the Prometheus text exposition over HTTP.
    pub metrics_addr: Option<String>,
}

/// A bound, running job service.
pub struct Daemon {
    scheduler: Arc<Scheduler>,
    listener: UnixListener,
    socket: PathBuf,
    metrics_listener: Option<TcpListener>,
}

impl Daemon {
    /// Starts the scheduler and binds the socket (and the metrics TCP
    /// listener, when configured). A stale socket file from a killed
    /// daemon is replaced; a live one (something answers a connect) is an
    /// error.
    ///
    /// # Errors
    /// Socket binding or state-directory I/O problems, or another daemon
    /// already serving on the path.
    pub fn bind(cfg: DaemonConfig) -> std::io::Result<Daemon> {
        if cfg.socket.exists() {
            if UnixStream::connect(&cfg.socket).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving on {}", cfg.socket.display()),
                ));
            }
            std::fs::remove_file(&cfg.socket)?;
        }
        if let Some(parent) = cfg.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let metrics_listener = match &cfg.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let scheduler = Arc::new(Scheduler::new(cfg.scheduler, cfg.resume)?);
        let listener = UnixListener::bind(&cfg.socket)?;
        Ok(Daemon { scheduler, listener, socket: cfg.socket, metrics_listener })
    }

    /// Jobs currently in the table (any state) — startup reporting.
    pub fn job_count(&self) -> usize {
        self.scheduler.list().len()
    }

    /// The metrics listener's bound address (resolves port `0`), when
    /// configured — for startup reporting and tests.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Serves connections (one thread each) until a client sends
    /// `shutdown`, then parks in-flight jobs resumably and removes the
    /// socket. Connection threads are detached: an idle client cannot
    /// hold the daemon open, and open watch streams end with a
    /// `watch-end` line when the scheduler parks their jobs.
    ///
    /// # Errors
    /// Accept-loop I/O failures (per-connection errors only drop that
    /// connection).
    pub fn run(self) -> std::io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        let build = Arc::new(BuildInfo::current());
        if let Some(listener) = self.metrics_listener {
            let scheduler = Arc::clone(&self.scheduler);
            let stop = Arc::clone(&stop);
            let build = Arc::clone(&build);
            std::thread::Builder::new()
                .name("sc-serve-metrics".to_string())
                .spawn(move || metrics_loop(&listener, &scheduler, &build, &stop))?;
        }
        for stream in self.listener.incoming() {
            let stream = stream?;
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let scheduler = Arc::clone(&self.scheduler);
            let stop = Arc::clone(&stop);
            let build = Arc::clone(&build);
            let socket = self.socket.clone();
            std::thread::Builder::new().name("sc-serve-conn".to_string()).spawn(move || {
                if let Ok(true) = serve_connection(stream, &scheduler, &build) {
                    // Shutdown requested: raise the flag, then self-connect
                    // to wake the accept loop blocked in `incoming`.
                    stop.store(true, Ordering::SeqCst);
                    let _ = UnixStream::connect(&socket);
                }
            })?;
        }
        let _ = std::fs::remove_file(&self.socket);
        self.scheduler.shutdown();
        Ok(())
    }
}

/// Serves Prometheus scrapes: any HTTP request on the listener answers
/// with the full merged exposition. Non-blocking accept so the loop can
/// observe shutdown.
fn metrics_loop(
    listener: &TcpListener,
    scheduler: &Scheduler,
    build: &BuildInfo,
    stop: &AtomicBool,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Drain the request head (path is ignored: every GET gets
                // the exposition), then answer and close.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let mut head = [0u8; 4096];
                let _ = stream.read(&mut head);
                let body = exposition(&scheduler.daemon_metrics(), &scheduler.job_metrics(), build);
                let _ = write!(
                    stream,
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => return,
        }
    }
}

/// Handles one client connection; returns whether shutdown was requested.
fn serve_connection(
    stream: UnixStream,
    scheduler: &Scheduler,
    build: &BuildInfo,
) -> std::io::Result<bool> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req = match Json::parse(&line)
            .map_err(|e| e.to_string())
            .and_then(|doc| Request::from_json(&doc))
        {
            Ok(req) => req,
            Err(e) => {
                write_line(&mut writer, &bad_request(e))?;
                continue;
            }
        };
        // Watch is the one streaming verb: it takes over the connection
        // and closes it when the stream ends.
        if let Request::Watch { id, every } = req {
            stream_watch(&mut writer, scheduler, &id, every)?;
            return Ok(false);
        }
        let (resp, stop) = handle_request(req, scheduler, build);
        write_line(&mut writer, &resp)?;
        if stop {
            return Ok(true);
        }
    }
    Ok(false)
}

fn write_line(writer: &mut UnixStream, resp: &Response) -> std::io::Result<()> {
    writer.write_all(resp.to_json().to_string().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Streams one watch subscription: a `watching` acknowledgement, then
/// `telemetry` lines at the subscriber's cadence, then `watch-end` when
/// the job goes terminal. A write failure (client gone) just ends the
/// thread; the lane-side queue is bounded, so the orphaned subscription
/// costs a fixed amount of memory until the job finishes.
fn stream_watch(
    writer: &mut UnixStream,
    scheduler: &Scheduler,
    id: &str,
    every: Option<u64>,
) -> std::io::Result<()> {
    let jid = match JobId::parse(id) {
        Some(jid) => jid,
        None => return write_line(writer, &bad_request(format!("'{id}' is not a job-<n> id"))),
    };
    let handle = match scheduler.watch(jid, every) {
        Ok(handle) => handle,
        Err(e) => {
            let code = match e {
                WatchError::UnknownJob => "unknown-job",
                WatchError::Terminal(_) => "not-watchable",
            };
            let resp = Response::Error { code: code.to_string(), message: format!("{jid}: {e}") };
            return write_line(writer, &resp);
        }
    };
    write_line(writer, &Response::Watching { id: id.to_string(), every: handle.every() })?;
    loop {
        match handle.recv(Duration::from_millis(500)) {
            WatchEvent::Snapshot { seq, dropped, doc } => {
                write_line(writer, &Response::Telemetry { id: id.to_string(), seq, dropped, doc })?;
            }
            WatchEvent::End { state, dropped } => {
                return write_line(
                    writer,
                    &Response::WatchEnd { id: id.to_string(), state, dropped },
                );
            }
            // Quiet stream (paused lanes, long slices): keep waiting; a
            // dead client surfaces as a write error on the next event.
            WatchEvent::TimedOut => {}
        }
    }
}

fn bad_request(message: impl Into<String>) -> Response {
    Response::Error { code: "bad-request".to_string(), message: message.into() }
}

/// Routes one request line; returns the response and whether the daemon
/// should stop. (Non-streaming path: `watch` is intercepted by the
/// connection loop and answers `bad-request` here.)
pub fn handle_line(line: &str, scheduler: &Scheduler) -> (Response, bool) {
    match Json::parse(line).map_err(|e| e.to_string()).and_then(|doc| Request::from_json(&doc)) {
        Ok(req) => handle_request(req, scheduler, &BuildInfo::current()),
        Err(e) => (bad_request(e), false),
    }
}

/// Routes one parsed request (every verb except the streaming `watch`).
fn handle_request(req: Request, scheduler: &Scheduler, build: &BuildInfo) -> (Response, bool) {
    let resp = match req {
        Request::Ping => Response::Pong { jobs: scheduler.list().len() as u64 },
        Request::Submit { spec } => match ScenarioSpec::from_json(&spec) {
            Ok(spec) => match scheduler.submit(spec) {
                Ok(id) => Response::Submitted { id: id.to_string() },
                Err(e) => Response::Error {
                    code: match &e {
                        SubmitError::QueueFull { .. } => "queue-full",
                        SubmitError::Spec(_) => "bad-spec",
                        SubmitError::Unservable(_) => "unservable",
                        SubmitError::ShuttingDown => "shutting-down",
                    }
                    .to_string(),
                    message: e.to_string(),
                },
            },
            Err(e) => Response::Error { code: "bad-spec".to_string(), message: e.to_string() },
        },
        Request::Status { id: None } => {
            Response::Status { jobs: scheduler.list().iter().map(|r| r.to_json()).collect() }
        }
        Request::Status { id: Some(id) } => match parse_id(&id) {
            Err(resp) => resp,
            Ok(id) => match scheduler.status(id) {
                Some(record) => Response::Status { jobs: vec![record.to_json()] },
                None => unknown_job(id),
            },
        },
        Request::Cancel { id } => match parse_id(&id) {
            Err(resp) => resp,
            Ok(id) => {
                if scheduler.cancel(id) {
                    Response::Cancelled { id: id.to_string() }
                } else if scheduler.status(id).is_some() {
                    Response::Error {
                        code: "not-cancellable".to_string(),
                        message: format!("{id} is already terminal"),
                    }
                } else {
                    unknown_job(id)
                }
            }
        },
        Request::Results { id } => match parse_id(&id) {
            Err(resp) => resp,
            Ok(id) => match (scheduler.status(id), scheduler.results(id)) {
                (Some(_), Some(doc)) => Response::Results { id: id.to_string(), doc },
                (Some(record), None) => Response::Error {
                    code: "not-done".to_string(),
                    message: format!(
                        "{id} is {} ({}/{} steps)",
                        record.state, record.steps_done, record.total_steps
                    ),
                },
                (None, _) => unknown_job(id),
            },
        },
        Request::Watch { .. } => {
            bad_request("watch is a streaming verb; it must own its connection")
        }
        Request::Metrics => Response::Metrics {
            text: exposition(&scheduler.daemon_metrics(), &scheduler.job_metrics(), build),
        },
        Request::Dump { id } => match parse_id(&id) {
            Err(resp) => resp,
            Ok(jid) => match scheduler.dump(jid) {
                Ok(d) => Response::Dump {
                    id: jid.to_string(),
                    step: d.step,
                    events: d.events,
                    dropped: d.dropped,
                    trace: d.doc,
                },
                Err(e) => Response::Error {
                    code: match e {
                        DumpError::UnknownJob => "unknown-job",
                        DumpError::NotStarted => "not-running",
                        DumpError::Disabled => "trace-disabled",
                    }
                    .to_string(),
                    message: format!("{jid}: {e}"),
                },
            },
        },
        Request::Shutdown => return (Response::ShuttingDown, true),
    };
    (resp, false)
}

fn parse_id(id: &str) -> Result<JobId, Response> {
    JobId::parse(id).ok_or_else(|| bad_request(format!("'{id}' is not a job-<n> id")))
}

fn unknown_job(id: JobId) -> Response {
    Response::Error { code: "unknown-job".to_string(), message: format!("no such job {id}") }
}
