//! The JSON-lines wire protocol between `scmd` clients and the daemon.
//!
//! One request per line, one response line back, over a local Unix
//! socket. Requests carry a `verb`; responses carry `ok` plus
//! verb-specific payload, or `ok: false` with a machine-readable `code`
//! and a human-readable `message`.

use sc_obs::json::Json;

/// Schema identifier stamped on every response line.
pub const PROTOCOL_SCHEMA_ID: &str = "sc-serve/1";

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answers with the job count.
    Ping,
    /// Submit a scenario spec (the spec document, inline).
    Submit {
        /// The scenario document, as parsed JSON.
        spec: Json,
    },
    /// Report one job (`Some(id)`) or all jobs (`None`).
    Status {
        /// `job-<n>`, or `None` for the full table.
        id: Option<String>,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// `job-<n>`.
        id: String,
    },
    /// Fetch a finished job's observables document.
    Results {
        /// `job-<n>`.
        id: String,
    },
    /// Subscribe to a running job's telemetry stream. The daemon answers
    /// with `Watching`, then pushes `Telemetry` lines until the job goes
    /// terminal (`WatchEnd`) — the one streaming verb in the protocol.
    Watch {
        /// `job-<n>`.
        id: String,
        /// Snapshot cadence in steps (`None`: the spec's
        /// `observability.watch_every`; `0`: every slice boundary).
        every: Option<u64>,
    },
    /// Fetch the merged Prometheus text exposition (daemon + jobs).
    Metrics,
    /// Snapshot a running job's flight-recorder trace ring.
    Dump {
        /// `job-<n>`.
        id: String,
    },
    /// Checkpoint in-flight jobs and stop the daemon.
    Shutdown,
}

impl Request {
    /// Encodes to one wire line (no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        match self {
            Request::Ping => fields.push(verb("ping")),
            Request::Submit { spec } => {
                fields.push(verb("submit"));
                fields.push(("spec".to_string(), spec.clone()));
            }
            Request::Status { id } => {
                fields.push(verb("status"));
                if let Some(id) = id {
                    fields.push(("id".to_string(), Json::str(id)));
                }
            }
            Request::Cancel { id } => {
                fields.push(verb("cancel"));
                fields.push(("id".to_string(), Json::str(id)));
            }
            Request::Results { id } => {
                fields.push(verb("results"));
                fields.push(("id".to_string(), Json::str(id)));
            }
            Request::Watch { id, every } => {
                fields.push(verb("watch"));
                fields.push(("id".to_string(), Json::str(id)));
                if let Some(every) = every {
                    fields.push(("every".to_string(), Json::num(*every as f64)));
                }
            }
            Request::Metrics => fields.push(verb("metrics")),
            Request::Dump { id } => {
                fields.push(verb("dump"));
                fields.push(("id".to_string(), Json::str(id)));
            }
            Request::Shutdown => fields.push(verb("shutdown")),
        }
        Json::Obj(fields)
    }

    /// Decodes one wire line; the error is a human-readable reason.
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let verb = doc
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| "request has no 'verb'".to_string())?;
        let id = || -> Result<String, String> {
            doc.get("id")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("'{verb}' needs an 'id'"))
        };
        Ok(match verb {
            "ping" => Request::Ping,
            "submit" => {
                Request::Submit { spec: doc.get("spec").cloned().ok_or("'submit' needs a 'spec'")? }
            }
            "status" => {
                Request::Status { id: doc.get("id").and_then(Json::as_str).map(str::to_string) }
            }
            "cancel" => Request::Cancel { id: id()? },
            "results" => Request::Results { id: id()? },
            "watch" => Request::Watch {
                id: id()?,
                every: match doc.get("every") {
                    None => None,
                    Some(v) => Some(
                        Json::as_f64(v)
                            .filter(|e| *e >= 0.0 && e.fract() == 0.0)
                            .map(|e| e as u64)
                            .ok_or("'watch' 'every' must be a non-negative integer")?,
                    ),
                },
            },
            "metrics" => Request::Metrics,
            "dump" => Request::Dump { id: id()? },
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown verb {other:?}")),
        })
    }
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The daemon is alive and tracking `jobs` jobs.
    Pong {
        /// Jobs in the table (any state).
        jobs: u64,
    },
    /// The spec was accepted as `id`.
    Submitted {
        /// The new job's `job-<n>` identity.
        id: String,
    },
    /// Job records (one, or the whole table).
    Status {
        /// Each entry is a job manifest document.
        jobs: Vec<Json>,
    },
    /// The job was cancelled.
    Cancelled {
        /// The cancelled job's identity.
        id: String,
    },
    /// A finished job's observables document.
    Results {
        /// The job's identity.
        id: String,
        /// The `sc-observables/1` document.
        doc: Json,
    },
    /// Watch subscription accepted; `Telemetry` lines follow.
    Watching {
        /// The watched job's identity.
        id: String,
        /// The effective snapshot cadence in steps (`0`: every slice).
        every: u64,
    },
    /// One streamed telemetry snapshot of a watched job.
    Telemetry {
        /// The watched job's identity.
        id: String,
        /// Snapshot sequence number (counts dropped snapshots too, so
        /// gaps in `seq` are visible to the client).
        seq: u64,
        /// Cumulative snapshots lost to this subscriber's queue overflow.
        dropped: u64,
        /// The `sc-metrics/1` telemetry document.
        doc: Json,
    },
    /// A watch stream ended: the job went terminal (or the daemon shut
    /// down); the connection closes after this line.
    WatchEnd {
        /// The watched job's identity.
        id: String,
        /// The job's state at stream end.
        state: String,
        /// Total snapshots this subscriber lost over the stream.
        dropped: u64,
    },
    /// The merged Prometheus text exposition.
    Metrics {
        /// The exposition document (text format 0.0.4).
        text: String,
    },
    /// A flight-recorder snapshot of a (typically running) job.
    Dump {
        /// The dumped job's identity.
        id: String,
        /// The job's `steps_done` at snapshot time.
        step: u64,
        /// Events captured in the trace document.
        events: u64,
        /// Ring-overflow drops since the job started.
        dropped: u64,
        /// The Chrome Trace Format document.
        trace: Json,
    },
    /// The daemon acknowledged shutdown and will stop accepting work.
    ShuttingDown,
    /// The request was rejected.
    Error {
        /// Machine-readable code (`queue-full`, `bad-spec`, `unknown-job`,
        /// `not-done`, `not-watchable`, `not-running`, `trace-disabled`,
        /// `bad-request`, `shutting-down`).
        code: String,
        /// Human-readable reason.
        message: String,
    },
}

impl Response {
    /// Encodes to one wire line (no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("schema".to_string(), Json::str(PROTOCOL_SCHEMA_ID))];
        let mut ok = |v: &str| {
            fields.push(("ok".to_string(), Json::Bool(true)));
            fields.push(verb(v));
        };
        match self {
            Response::Pong { jobs } => {
                ok("pong");
                fields.push(("jobs".to_string(), Json::num(*jobs as f64)));
            }
            Response::Submitted { id } => {
                ok("submitted");
                fields.push(("id".to_string(), Json::str(id)));
            }
            Response::Status { jobs } => {
                ok("status");
                fields.push(("jobs".to_string(), Json::Arr(jobs.clone())));
            }
            Response::Cancelled { id } => {
                ok("cancelled");
                fields.push(("id".to_string(), Json::str(id)));
            }
            Response::Results { id, doc } => {
                ok("results");
                fields.push(("id".to_string(), Json::str(id)));
                fields.push(("results".to_string(), doc.clone()));
            }
            Response::Watching { id, every } => {
                ok("watching");
                fields.push(("id".to_string(), Json::str(id)));
                fields.push(("every".to_string(), Json::num(*every as f64)));
            }
            Response::Telemetry { id, seq, dropped, doc } => {
                ok("telemetry");
                fields.push(("id".to_string(), Json::str(id)));
                fields.push(("seq".to_string(), Json::num(*seq as f64)));
                fields.push(("dropped".to_string(), Json::num(*dropped as f64)));
                fields.push(("telemetry".to_string(), doc.clone()));
            }
            Response::WatchEnd { id, state, dropped } => {
                ok("watch-end");
                fields.push(("id".to_string(), Json::str(id)));
                fields.push(("state".to_string(), Json::str(state)));
                fields.push(("dropped".to_string(), Json::num(*dropped as f64)));
            }
            Response::Metrics { text } => {
                ok("metrics");
                fields.push(("text".to_string(), Json::str(text)));
            }
            Response::Dump { id, step, events, dropped, trace } => {
                ok("dump");
                fields.push(("id".to_string(), Json::str(id)));
                fields.push(("step".to_string(), Json::num(*step as f64)));
                fields.push(("events".to_string(), Json::num(*events as f64)));
                fields.push(("dropped".to_string(), Json::num(*dropped as f64)));
                fields.push(("trace".to_string(), trace.clone()));
            }
            Response::ShuttingDown => ok("shutting-down"),
            Response::Error { code, message } => {
                fields.push(("ok".to_string(), Json::Bool(false)));
                fields.push(("code".to_string(), Json::str(code)));
                fields.push(("message".to_string(), Json::str(message)));
            }
        }
        Json::Obj(fields)
    }

    /// Decodes one wire line; the error is a human-readable reason.
    pub fn from_json(doc: &Json) -> Result<Response, String> {
        let ok = doc
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| "response has no 'ok'".to_string())?;
        if !ok {
            return Ok(Response::Error {
                code: doc.get("code").and_then(Json::as_str).unwrap_or("unknown").to_string(),
                message: doc.get("message").and_then(Json::as_str).unwrap_or_default().to_string(),
            });
        }
        let verb = doc
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| "response has no 'verb'".to_string())?;
        let id = || -> Result<String, String> {
            doc.get("id")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("'{verb}' response has no 'id'"))
        };
        let num = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_f64)
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as u64)
                .ok_or_else(|| format!("'{verb}' response has no '{k}'"))
        };
        Ok(match verb {
            "pong" => Response::Pong {
                jobs: doc.get("jobs").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            },
            "submitted" => Response::Submitted { id: id()? },
            "status" => Response::Status {
                jobs: doc
                    .get("jobs")
                    .and_then(Json::as_array)
                    .ok_or("'status' response has no 'jobs'")?
                    .to_vec(),
            },
            "cancelled" => Response::Cancelled { id: id()? },
            "results" => Response::Results {
                id: id()?,
                doc: doc.get("results").cloned().ok_or("'results' response has no 'results'")?,
            },
            "watching" => Response::Watching { id: id()?, every: num("every")? },
            "telemetry" => Response::Telemetry {
                id: id()?,
                seq: num("seq")?,
                dropped: num("dropped")?,
                doc: doc
                    .get("telemetry")
                    .cloned()
                    .ok_or("'telemetry' response has no 'telemetry'")?,
            },
            "watch-end" => Response::WatchEnd {
                id: id()?,
                state: doc
                    .get("state")
                    .and_then(Json::as_str)
                    .ok_or("'watch-end' response has no 'state'")?
                    .to_string(),
                dropped: num("dropped")?,
            },
            "metrics" => Response::Metrics {
                text: doc
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or("'metrics' response has no 'text'")?
                    .to_string(),
            },
            "dump" => Response::Dump {
                id: id()?,
                step: num("step")?,
                events: num("events")?,
                dropped: num("dropped")?,
                trace: doc.get("trace").cloned().ok_or("'dump' response has no 'trace'")?,
            },
            "shutting-down" => Response::ShuttingDown,
            other => return Err(format!("unknown response verb {other:?}")),
        })
    }
}

fn verb(v: &str) -> (String, Json) {
    ("verb".to_string(), Json::str(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let line = req.to_json().to_string();
        let back = Request::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, req, "{line}");
    }

    fn round_trip_response(resp: Response) {
        let line = resp.to_json().to_string();
        let back = Response::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, resp, "{line}");
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Submit {
            spec: Json::Obj(vec![("name".to_string(), Json::str("lj"))]),
        });
        round_trip_request(Request::Status { id: None });
        round_trip_request(Request::Status { id: Some("job-2".to_string()) });
        round_trip_request(Request::Cancel { id: "job-2".to_string() });
        round_trip_request(Request::Results { id: "job-2".to_string() });
        round_trip_request(Request::Watch { id: "job-2".to_string(), every: None });
        round_trip_request(Request::Watch { id: "job-2".to_string(), every: Some(0) });
        round_trip_request(Request::Watch { id: "job-2".to_string(), every: Some(50) });
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Dump { id: "job-2".to_string() });
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::Pong { jobs: 3 });
        round_trip_response(Response::Submitted { id: "job-0".to_string() });
        round_trip_response(Response::Status { jobs: vec![Json::Obj(vec![])] });
        round_trip_response(Response::Cancelled { id: "job-1".to_string() });
        round_trip_response(Response::Results {
            id: "job-1".to_string(),
            doc: Json::Obj(vec![("steps".to_string(), Json::num(4.0))]),
        });
        round_trip_response(Response::Watching { id: "job-1".to_string(), every: 25 });
        round_trip_response(Response::Telemetry {
            id: "job-1".to_string(),
            seq: 4,
            dropped: 1,
            doc: Json::Obj(vec![("steps".to_string(), Json::num(100.0))]),
        });
        round_trip_response(Response::WatchEnd {
            id: "job-1".to_string(),
            state: "done".to_string(),
            dropped: 2,
        });
        round_trip_response(Response::Metrics {
            text: "# TYPE serve_queue_depth gauge\nserve_queue_depth 1\n".to_string(),
        });
        round_trip_response(Response::Dump {
            id: "job-1".to_string(),
            step: 40,
            events: 128,
            dropped: 0,
            trace: Json::Obj(vec![("traceEvents".to_string(), Json::Arr(vec![]))]),
        });
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Error {
            code: "queue-full".to_string(),
            message: "8 jobs live".to_string(),
        });
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            (r#"{"no": "verb"}"#, "no 'verb'"),
            (r#"{"verb": "warp"}"#, "unknown verb"),
            (r#"{"verb": "submit"}"#, "needs a 'spec'"),
            (r#"{"verb": "cancel"}"#, "needs an 'id'"),
            (r#"{"verb": "watch"}"#, "needs an 'id'"),
            (r#"{"verb": "watch", "id": "job-1", "every": -5}"#, "non-negative"),
            (r#"{"verb": "dump"}"#, "needs an 'id'"),
        ] {
            let e = Request::from_json(&Json::parse(line).unwrap()).unwrap_err();
            assert!(e.contains(needle), "{line} -> {e}");
        }
    }
}
