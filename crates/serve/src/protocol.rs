//! The JSON-lines wire protocol between `scmd` clients and the daemon.
//!
//! One request per line, one response line back, over a local Unix
//! socket. Requests carry a `verb`; responses carry `ok` plus
//! verb-specific payload, or `ok: false` with a machine-readable `code`
//! and a human-readable `message`.

use sc_obs::json::Json;

/// Schema identifier stamped on every response line.
pub const PROTOCOL_SCHEMA_ID: &str = "sc-serve/1";

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answers with the job count.
    Ping,
    /// Submit a scenario spec (the spec document, inline).
    Submit {
        /// The scenario document, as parsed JSON.
        spec: Json,
    },
    /// Report one job (`Some(id)`) or all jobs (`None`).
    Status {
        /// `job-<n>`, or `None` for the full table.
        id: Option<String>,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// `job-<n>`.
        id: String,
    },
    /// Fetch a finished job's observables document.
    Results {
        /// `job-<n>`.
        id: String,
    },
    /// Checkpoint in-flight jobs and stop the daemon.
    Shutdown,
}

impl Request {
    /// Encodes to one wire line (no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        match self {
            Request::Ping => fields.push(verb("ping")),
            Request::Submit { spec } => {
                fields.push(verb("submit"));
                fields.push(("spec".to_string(), spec.clone()));
            }
            Request::Status { id } => {
                fields.push(verb("status"));
                if let Some(id) = id {
                    fields.push(("id".to_string(), Json::str(id)));
                }
            }
            Request::Cancel { id } => {
                fields.push(verb("cancel"));
                fields.push(("id".to_string(), Json::str(id)));
            }
            Request::Results { id } => {
                fields.push(verb("results"));
                fields.push(("id".to_string(), Json::str(id)));
            }
            Request::Shutdown => fields.push(verb("shutdown")),
        }
        Json::Obj(fields)
    }

    /// Decodes one wire line; the error is a human-readable reason.
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let verb = doc
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| "request has no 'verb'".to_string())?;
        let id = || -> Result<String, String> {
            doc.get("id")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("'{verb}' needs an 'id'"))
        };
        Ok(match verb {
            "ping" => Request::Ping,
            "submit" => {
                Request::Submit { spec: doc.get("spec").cloned().ok_or("'submit' needs a 'spec'")? }
            }
            "status" => {
                Request::Status { id: doc.get("id").and_then(Json::as_str).map(str::to_string) }
            }
            "cancel" => Request::Cancel { id: id()? },
            "results" => Request::Results { id: id()? },
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown verb {other:?}")),
        })
    }
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The daemon is alive and tracking `jobs` jobs.
    Pong {
        /// Jobs in the table (any state).
        jobs: u64,
    },
    /// The spec was accepted as `id`.
    Submitted {
        /// The new job's `job-<n>` identity.
        id: String,
    },
    /// Job records (one, or the whole table).
    Status {
        /// Each entry is a job manifest document.
        jobs: Vec<Json>,
    },
    /// The job was cancelled.
    Cancelled {
        /// The cancelled job's identity.
        id: String,
    },
    /// A finished job's observables document.
    Results {
        /// The job's identity.
        id: String,
        /// The `sc-observables/1` document.
        doc: Json,
    },
    /// The daemon acknowledged shutdown and will stop accepting work.
    ShuttingDown,
    /// The request was rejected.
    Error {
        /// Machine-readable code (`queue-full`, `bad-spec`, `unknown-job`,
        /// `not-done`, `bad-request`, `shutting-down`).
        code: String,
        /// Human-readable reason.
        message: String,
    },
}

impl Response {
    /// Encodes to one wire line (no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("schema".to_string(), Json::str(PROTOCOL_SCHEMA_ID))];
        let mut ok = |v: &str| {
            fields.push(("ok".to_string(), Json::Bool(true)));
            fields.push(verb(v));
        };
        match self {
            Response::Pong { jobs } => {
                ok("pong");
                fields.push(("jobs".to_string(), Json::num(*jobs as f64)));
            }
            Response::Submitted { id } => {
                ok("submitted");
                fields.push(("id".to_string(), Json::str(id)));
            }
            Response::Status { jobs } => {
                ok("status");
                fields.push(("jobs".to_string(), Json::Arr(jobs.clone())));
            }
            Response::Cancelled { id } => {
                ok("cancelled");
                fields.push(("id".to_string(), Json::str(id)));
            }
            Response::Results { id, doc } => {
                ok("results");
                fields.push(("id".to_string(), Json::str(id)));
                fields.push(("results".to_string(), doc.clone()));
            }
            Response::ShuttingDown => ok("shutting-down"),
            Response::Error { code, message } => {
                fields.push(("ok".to_string(), Json::Bool(false)));
                fields.push(("code".to_string(), Json::str(code)));
                fields.push(("message".to_string(), Json::str(message)));
            }
        }
        Json::Obj(fields)
    }

    /// Decodes one wire line; the error is a human-readable reason.
    pub fn from_json(doc: &Json) -> Result<Response, String> {
        let ok = doc
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| "response has no 'ok'".to_string())?;
        if !ok {
            return Ok(Response::Error {
                code: doc.get("code").and_then(Json::as_str).unwrap_or("unknown").to_string(),
                message: doc.get("message").and_then(Json::as_str).unwrap_or_default().to_string(),
            });
        }
        let verb = doc
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| "response has no 'verb'".to_string())?;
        let id = || -> Result<String, String> {
            doc.get("id")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("'{verb}' response has no 'id'"))
        };
        Ok(match verb {
            "pong" => Response::Pong {
                jobs: doc.get("jobs").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            },
            "submitted" => Response::Submitted { id: id()? },
            "status" => Response::Status {
                jobs: doc
                    .get("jobs")
                    .and_then(Json::as_array)
                    .ok_or("'status' response has no 'jobs'")?
                    .to_vec(),
            },
            "cancelled" => Response::Cancelled { id: id()? },
            "results" => Response::Results {
                id: id()?,
                doc: doc.get("results").cloned().ok_or("'results' response has no 'results'")?,
            },
            "shutting-down" => Response::ShuttingDown,
            other => return Err(format!("unknown response verb {other:?}")),
        })
    }
}

fn verb(v: &str) -> (String, Json) {
    ("verb".to_string(), Json::str(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let line = req.to_json().to_string();
        let back = Request::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, req, "{line}");
    }

    fn round_trip_response(resp: Response) {
        let line = resp.to_json().to_string();
        let back = Response::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, resp, "{line}");
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Submit {
            spec: Json::Obj(vec![("name".to_string(), Json::str("lj"))]),
        });
        round_trip_request(Request::Status { id: None });
        round_trip_request(Request::Status { id: Some("job-2".to_string()) });
        round_trip_request(Request::Cancel { id: "job-2".to_string() });
        round_trip_request(Request::Results { id: "job-2".to_string() });
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::Pong { jobs: 3 });
        round_trip_response(Response::Submitted { id: "job-0".to_string() });
        round_trip_response(Response::Status { jobs: vec![Json::Obj(vec![])] });
        round_trip_response(Response::Cancelled { id: "job-1".to_string() });
        round_trip_response(Response::Results {
            id: "job-1".to_string(),
            doc: Json::Obj(vec![("steps".to_string(), Json::num(4.0))]),
        });
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Error {
            code: "queue-full".to_string(),
            message: "8 jobs live".to_string(),
        });
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            (r#"{"no": "verb"}"#, "no 'verb'"),
            (r#"{"verb": "warp"}"#, "unknown verb"),
            (r#"{"verb": "submit"}"#, "needs a 'spec'"),
            (r#"{"verb": "cancel"}"#, "needs an 'id'"),
        ] {
            let e = Request::from_json(&Json::parse(line).unwrap()).unwrap_err();
            assert!(e.contains(needle), "{line} -> {e}");
        }
    }
}
