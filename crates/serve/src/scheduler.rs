//! The multi-tenant job scheduler: worker lanes, fair round-robin
//! time-slicing, bounded admission, cancellation, and per-job checkpoint
//! persistence.
//!
//! ## Design
//!
//! Jobs are pinned to a **lane** (`id % lanes`) at submission; each lane
//! is one worker thread that owns its jobs' live simulation state and
//! steps them cooperatively, [`SchedulerConfig::slice_steps`] at a time,
//! in strict round-robin order. Pinning keeps the engines on the thread
//! that created them (no `Send` requirement on executor internals) and
//! makes per-lane scheduling order deterministic — the fairness tests
//! assert the exact interleaving.
//!
//! Each job is driven through a per-job [`sc_md::Supervisor`] over
//! [`sc_spec::RunHandle`]'s `Recoverable` impl, so a served job with a
//! fault plan gets the same rollback/re-decomposition ladder as
//! `scmd chaos` runs. Unrecovered faults fail only that job; the lane and
//! its other tenants keep running.
//!
//! With a state directory configured, every job persists its spec, a
//! manifest, and (on its checkpoint schedule and at graceful shutdown) a
//! labelled checkpoint — enough for [`Scheduler::new`] with
//! `resume = true` to reload the table and continue interrupted jobs
//! after a daemon restart. Trajectories are deterministic and checkpoint
//! restore is bitwise, so a resumed job's final observables are
//! byte-identical to an uninterrupted run's.

use crate::job::{JobId, JobRecord, JobState};
use crate::metrics::DaemonMetrics;
use crate::watch::{WatchHandle, WatchShared};
use crossbeam_channel::{unbounded, Receiver, Sender};
use sc_md::supervisor::{Supervisor, SupervisorConfig};
use sc_md::Checkpoint;
use sc_obs::json::Json;
use sc_obs::{chrome_trace, MetricsSnapshot, Registry, Tracer};
use sc_spec::{observables_doc, RunHandle, ScenarioSpec, SpecError};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler policy.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker lanes (stepping threads). Jobs are pinned `id % lanes`.
    pub lanes: usize,
    /// Maximum live (queued + running) jobs; submission beyond this is
    /// rejected with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Steps granted per scheduling slice.
    pub slice_steps: u64,
    /// Persistence root (specs, manifests, checkpoints, results). `None`
    /// runs fully in-memory (no restart resume).
    pub state_dir: Option<PathBuf>,
    /// Rollback budget per job for fault recovery.
    pub max_rollbacks: u32,
    /// Start with the lanes admitting but not stepping, until
    /// [`Scheduler::start`] — lets a batch of submissions land before any
    /// slicing begins, making the scheduling order exactly reproducible
    /// (the fairness tests rely on this).
    pub start_paused: bool,
    /// Per-subscriber watch queue capacity, in snapshots. A subscriber
    /// that falls further behind loses its **oldest** snapshots (counted,
    /// never blocking the lane).
    pub watch_queue: usize,
    /// Flight-recorder ring capacity (events per trace sink) armed for
    /// every job whose spec does not set `observability.ring` or `trace`
    /// itself. `0` leaves un-traced jobs dark (Dump then answers with a
    /// typed error).
    pub flight_ring: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            lanes: 2,
            queue_capacity: 8,
            slice_steps: 4,
            state_dir: None,
            max_rollbacks: 64,
            start_paused: false,
            watch_queue: 16,
            flight_ring: sc_obs::trace::DEFAULT_CAPACITY,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// The live-job cap is reached; retry after a job finishes.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// The spec failed validation.
    Spec(SpecError),
    /// The spec is valid but cannot be served (e.g. the one-shot threaded
    /// executor, which cannot be checkpointed or time-sliced).
    Unservable(String),
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full: {capacity} jobs already live")
            }
            SubmitError::Spec(e) => write!(f, "invalid spec: {e}"),
            SubmitError::Unservable(why) => write!(f, "spec cannot be served: {why}"),
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

/// Why a watch subscription was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchError {
    /// No job with that id.
    UnknownJob,
    /// The job is already terminal; there is nothing left to stream.
    Terminal(JobState),
}

impl fmt::Display for WatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchError::UnknownJob => write!(f, "no such job"),
            WatchError::Terminal(state) => write!(f, "job is already {state}"),
        }
    }
}

/// Why a flight-recorder dump was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpError {
    /// No job with that id.
    UnknownJob,
    /// The job has no live engine in this daemon (still queued, or a
    /// terminal job reloaded from a previous daemon's state directory).
    NotStarted,
    /// The job's trace ring is explicitly disabled
    /// (`observability.ring: 0` with the scheduler's flight ring off).
    Disabled,
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpError::UnknownJob => write!(f, "no such job"),
            DumpError::NotStarted => write!(f, "job has no live trace in this daemon"),
            DumpError::Disabled => write!(f, "job's flight-recorder ring is disabled"),
        }
    }
}

/// A flight-recorder snapshot of a (typically still running) job.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// The job the trace came from.
    pub id: JobId,
    /// The job's `steps_done` at snapshot time.
    pub step: u64,
    /// Events captured in the dump.
    pub events: u64,
    /// Ring-overflow drops since the job started (older history lost).
    pub dropped: u64,
    /// The Chrome Trace Format document.
    pub doc: Json,
}

/// One job's bookkeeping entry.
struct JobEntry {
    record: JobRecord,
    spec: ScenarioSpec,
    /// Cooperative cancellation flag; the lane honours it at the next
    /// slice boundary.
    cancel: bool,
    /// The observables document, once [`JobState::Done`].
    results: Option<Json>,
    /// Live watch subscriptions; the lane fans snapshots out to these at
    /// slice boundaries.
    watchers: Vec<Arc<WatchShared>>,
    /// Clone of the running engine's registry (Arc-backed, thread-safe)
    /// so the daemon can scrape a job the lane exclusively owns.
    metrics: Option<Registry>,
    /// Clone of the running engine's tracer, for mid-run `Dump`.
    tracer: Option<Tracer>,
}

impl JobEntry {
    fn new(record: JobRecord, spec: ScenarioSpec, results: Option<Json>) -> JobEntry {
        JobEntry {
            record,
            spec,
            cancel: false,
            results,
            watchers: Vec::new(),
            metrics: None,
            tracer: None,
        }
    }
}

struct Inner {
    jobs: BTreeMap<u64, JobEntry>,
    next_id: u64,
    shutting_down: bool,
    /// `(job, steps_done)` after every completed slice — the scheduling
    /// trace the fairness tests assert on.
    trace: Vec<(JobId, u64)>,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signalled on every terminal transition (and slice) for
    /// [`Scheduler::wait_idle`].
    progress: Condvar,
    cfg: SchedulerConfig,
    /// Daemon-level service metrics (queue depth, admissions, slice
    /// durations, journal counters, ...).
    metrics: DaemonMetrics,
}

enum LaneMsg {
    Run(u64),
    /// Begin slicing (only sent when configured `start_paused`).
    Start,
    Shutdown,
}

/// The job service's scheduling core (used directly by tests and wrapped
/// by the socket daemon).
pub struct Scheduler {
    shared: Arc<Shared>,
    lanes: Vec<Sender<LaneMsg>>,
    /// Drained by [`Scheduler::shutdown`] (shared-reference shutdown lets
    /// the daemon park jobs while connection threads still hold the
    /// scheduler behind an `Arc`).
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts the lanes. With `resume` set and a state directory
    /// configured, reloads persisted jobs first: terminal jobs reappear
    /// with their results, interrupted jobs restart from their last
    /// checkpoint (or from scratch) and run to completion.
    ///
    /// # Errors
    /// I/O problems creating or scanning the state directory.
    pub fn new(cfg: SchedulerConfig, resume: bool) -> std::io::Result<Scheduler> {
        assert!(cfg.lanes >= 1, "scheduler needs at least one lane");
        assert!(cfg.slice_steps >= 1, "slices must make progress");
        if let Some(dir) = &cfg.state_dir {
            std::fs::create_dir_all(dir.join("jobs"))?;
        }
        let metrics = DaemonMetrics::new();
        metrics.lanes_total.set(cfg.lanes as f64);
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                next_id: 0,
                shutting_down: false,
                trace: Vec::new(),
            }),
            progress: Condvar::new(),
            cfg: cfg.clone(),
            metrics,
        });
        let mut lanes = Vec::new();
        let mut threads = Vec::new();
        for lane in 0..cfg.lanes {
            let (tx, rx) = unbounded();
            let shared2 = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sc-serve-lane-{lane}"))
                    .spawn(move || lane_loop(lane, shared2, rx))?,
            );
            lanes.push(tx);
        }
        let sched = Scheduler { shared, lanes, threads: Mutex::new(threads) };
        if resume {
            sched.resume_persisted()?;
        }
        Ok(sched)
    }

    /// Submits a spec as a new job.
    ///
    /// # Errors
    /// See [`SubmitError`]; admission is atomic — a rejected submission
    /// leaves no trace.
    pub fn submit(&self, spec: ScenarioSpec) -> Result<JobId, SubmitError> {
        spec.validate().map_err(SubmitError::Spec)?;
        if spec.executor.kind() == "threaded" {
            return Err(SubmitError::Unservable(
                "the threaded executor is one-shot and cannot be time-sliced; \
                 run it with 'scmd run --spec'"
                    .to_string(),
            ));
        }
        let (id, lane) = {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.shutting_down {
                return Err(SubmitError::ShuttingDown);
            }
            let live = inner.jobs.values().filter(|j| !j.record.state.is_terminal()).count();
            if live >= self.shared.cfg.queue_capacity {
                self.shared.metrics.rejected.inc();
                return Err(SubmitError::QueueFull { capacity: self.shared.cfg.queue_capacity });
            }
            let id = JobId(inner.next_id);
            inner.next_id += 1;
            let lane = (id.0 as usize) % self.lanes.len();
            let record = JobRecord::new(id, &spec.name, spec.steps, lane);
            if let Some(dir) = job_dir(&self.shared.cfg, id) {
                // Persist spec + manifest before the job becomes visible,
                // so a crash never leaves an unrecoverable table entry.
                let persisted = std::fs::create_dir_all(&dir)
                    .and_then(|()| {
                        write_atomic(&dir.join("spec.json"), &spec.to_json().to_string())
                    })
                    .and_then(|()| {
                        write_atomic(&dir.join("manifest.json"), &record.to_json().to_string())
                    });
                if let Err(e) = persisted {
                    return Err(SubmitError::Unservable(format!("cannot persist job state: {e}")));
                }
            }
            inner.jobs.insert(id.0, JobEntry::new(record, spec, None));
            self.shared.metrics.submitted.inc();
            refresh_gauges(&inner, &self.shared.metrics);
            (id, lane)
        };
        // The lane threads outlive every submit (they only exit in
        // shutdown, which flips `shutting_down` first).
        self.lanes[lane].send(LaneMsg::Run(id.0)).expect("lane thread alive");
        Ok(id)
    }

    /// One job's current record.
    pub fn status(&self, id: JobId) -> Option<JobRecord> {
        self.shared.inner.lock().unwrap().jobs.get(&id.0).map(|j| j.record.clone())
    }

    /// The whole job table, ordered by id.
    pub fn list(&self) -> Vec<JobRecord> {
        self.shared.inner.lock().unwrap().jobs.values().map(|j| j.record.clone()).collect()
    }

    /// Requests cancellation. Returns `true` if the job was live (the
    /// lane will retire it at the next slice boundary and release its
    /// slot), `false` if unknown or already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut inner = self.shared.inner.lock().unwrap();
        match inner.jobs.get_mut(&id.0) {
            Some(entry) if !entry.record.state.is_terminal() => {
                entry.cancel = true;
                true
            }
            _ => false,
        }
    }

    /// A finished job's observables document.
    pub fn results(&self, id: JobId) -> Option<Json> {
        self.shared.inner.lock().unwrap().jobs.get(&id.0).and_then(|j| j.results.clone())
    }

    /// Blocks until every job is terminal (or `timeout`); returns whether
    /// the table is idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.jobs.values().all(|j| j.record.state.is_terminal()) {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self.shared.progress.wait_timeout(inner, left).unwrap();
            inner = guard;
        }
    }

    /// The slice-order trace: `(job, steps_done)` after each slice, in
    /// execution order. Test observability for fairness assertions.
    pub fn trace(&self) -> Vec<(JobId, u64)> {
        self.shared.inner.lock().unwrap().trace.clone()
    }

    /// Subscribes to a live job's periodic telemetry snapshots. `every`
    /// is the snapshot cadence in steps (`None`: the spec's
    /// `observability.watch_every`; `0`: every slice boundary). The
    /// subscription is bounded ([`SchedulerConfig::watch_queue`]):
    /// a slow consumer loses its oldest snapshots, counted, and the lane
    /// never blocks on it.
    ///
    /// # Errors
    /// [`WatchError::UnknownJob`] / [`WatchError::Terminal`].
    pub fn watch(&self, id: JobId, every: Option<u64>) -> Result<WatchHandle, WatchError> {
        let mut inner = self.shared.inner.lock().unwrap();
        let Some(entry) = inner.jobs.get_mut(&id.0) else {
            return Err(WatchError::UnknownJob);
        };
        if entry.record.state.is_terminal() {
            return Err(WatchError::Terminal(entry.record.state));
        }
        let every = every.unwrap_or(entry.spec.observability.watch_every);
        let shared = WatchShared::new(self.shared.cfg.watch_queue, every);
        entry.watchers.push(Arc::clone(&shared));
        Ok(WatchHandle { shared })
    }

    /// Snapshots a job's flight-recorder ring — the recent trace history
    /// of a (typically still running) job — as a Chrome Trace Format
    /// document. Safe mid-run: ring slots overwritten concurrently are
    /// skipped, never torn.
    ///
    /// # Errors
    /// [`DumpError::UnknownJob`] / [`DumpError::NotStarted`] /
    /// [`DumpError::Disabled`].
    pub fn dump(&self, id: JobId) -> Result<TraceDump, DumpError> {
        let (tracer, step) = {
            let inner = self.shared.inner.lock().unwrap();
            let Some(entry) = inner.jobs.get(&id.0) else {
                return Err(DumpError::UnknownJob);
            };
            match &entry.tracer {
                Some(tracer) => (tracer.clone(), entry.record.steps_done),
                None => return Err(DumpError::NotStarted),
            }
        };
        if !tracer.enabled() {
            return Err(DumpError::Disabled);
        }
        let events = tracer.events();
        Ok(TraceDump {
            id,
            step,
            events: events.len() as u64,
            dropped: tracer.dropped(),
            doc: chrome_trace(&events),
        })
    }

    /// The daemon-level service metrics snapshot (unlabeled).
    pub fn daemon_metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.registry.snapshot()
    }

    /// Every live job registry's snapshot (label = job id) paired with
    /// its tenant (spec name), for the merged Prometheus export. Jobs
    /// whose spec left `observability.metrics` off have no registry and
    /// are skipped.
    pub fn job_metrics(&self) -> Vec<(MetricsSnapshot, String)> {
        let inner = self.shared.inner.lock().unwrap();
        inner
            .jobs
            .values()
            .filter_map(|e| {
                let registry = e.metrics.as_ref().filter(|r| r.enabled())?;
                Some((registry.snapshot(), e.record.spec_name.clone()))
            })
            .collect()
    }

    /// Releases lanes started under [`SchedulerConfig::start_paused`].
    pub fn start(&self) {
        for tx in &self.lanes {
            let _ = tx.send(LaneMsg::Start);
        }
    }

    /// Stops accepting work, checkpoints in-flight jobs, and joins the
    /// lanes. Queued/running jobs stay non-terminal in the persisted
    /// manifests, so a later `resume` continues them. Open watch streams
    /// end with the job's state at park time. Idempotent; takes `&self`
    /// so the daemon can shut down while connection threads still share
    /// the scheduler.
    pub fn shutdown(&self) {
        self.shared.inner.lock().unwrap().shutting_down = true;
        for tx in &self.lanes {
            let _ = tx.send(LaneMsg::Shutdown);
        }
        for t in self.threads.lock().unwrap().drain(..) {
            let _ = t.join();
        }
        // With the lanes parked nothing will stream again: end every
        // remaining subscription at the job's parked state.
        let mut inner = self.shared.inner.lock().unwrap();
        for entry in inner.jobs.values_mut() {
            let state = entry.record.state;
            for w in entry.watchers.drain(..) {
                w.close(state.as_str());
            }
        }
    }

    /// Reloads the persisted job table (see [`Scheduler::new`]).
    fn resume_persisted(&self) -> std::io::Result<()> {
        let Some(dir) = self.shared.cfg.state_dir.clone() else {
            return Ok(());
        };
        let mut job_ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir.join("jobs"))? {
            if let Some(id) = entry?.file_name().to_str().and_then(JobId::parse).map(|j| j.0) {
                job_ids.push(id);
            }
        }
        job_ids.sort_unstable();
        let mut restarts = Vec::new();
        {
            let mut inner = self.shared.inner.lock().unwrap();
            for raw in job_ids {
                let id = JobId(raw);
                let dir = job_dir(&self.shared.cfg, id).expect("state_dir is set");
                let Ok(mut record) = read_json(&dir.join("manifest.json"))
                    .and_then(|doc| JobRecord::from_json(&doc))
                else {
                    continue; // torn write of a brand-new job: skip
                };
                let Ok(spec) = read_json(&dir.join("spec.json"))
                    .and_then(|doc| ScenarioSpec::from_json(&doc).map_err(|e| e.to_string()))
                else {
                    continue;
                };
                let results = read_json(&dir.join("results.json")).ok();
                if !record.state.is_terminal() {
                    // Interrupted: re-queue on the lane derived from the id
                    // (the lane count may have changed across restarts).
                    record.state = JobState::Queued;
                    record.lane = (raw as usize) % self.lanes.len();
                    restarts.push((raw, record.lane));
                }
                inner.next_id = inner.next_id.max(raw + 1);
                inner.jobs.insert(raw, JobEntry::new(record, spec, results));
            }
            refresh_gauges(&inner, &self.shared.metrics);
        }
        for (raw, lane) in restarts {
            self.lanes[lane].send(LaneMsg::Run(raw)).expect("lane thread alive");
        }
        Ok(())
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Recomputes the daemon's job-table gauges (call with the table lock
/// held, after any state transition). Lane business is the number of
/// distinct lanes holding at least one non-terminal job.
fn refresh_gauges(inner: &Inner, metrics: &DaemonMetrics) {
    let mut counts = [0u64; 5];
    let mut busy: Vec<usize> = Vec::new();
    for entry in inner.jobs.values() {
        let state = entry.record.state;
        counts[match state {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Cancelled => 4,
        }] += 1;
        if !state.is_terminal() && !busy.contains(&entry.record.lane) {
            busy.push(entry.record.lane);
        }
    }
    metrics.jobs_queued.set(counts[0] as f64);
    metrics.jobs_running.set(counts[1] as f64);
    metrics.jobs_done.set(counts[2] as f64);
    metrics.jobs_failed.set(counts[3] as f64);
    metrics.jobs_cancelled.set(counts[4] as f64);
    metrics.queue_depth.set((counts[0] + counts[1]) as f64);
    metrics.lanes_busy.set(busy.len() as f64);
}

/// Ends every subscription on a job that just went terminal, delivering
/// the terminal state after any still-queued snapshots.
fn close_watchers(shared: &Arc<Shared>, id: JobId) {
    let watchers = {
        let mut inner = shared.inner.lock().unwrap();
        match inner.jobs.get_mut(&id.0) {
            Some(entry) => {
                let state = entry.record.state;
                let drained: Vec<_> = entry.watchers.drain(..).collect();
                refresh_gauges(&inner, &shared.metrics);
                drained.into_iter().map(|w| (w, state)).collect::<Vec<_>>()
            }
            None => Vec::new(),
        }
    };
    for (w, state) in watchers {
        w.close(state.as_str());
    }
}

fn job_dir(cfg: &SchedulerConfig, id: JobId) -> Option<PathBuf> {
    cfg.state_dir.as_ref().map(|d| d.join("jobs").join(id.to_string()))
}

/// Writes via a temp file + rename, so readers never observe torn JSON.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn read_json(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Json::parse(&text).map_err(|e| e.to_string())
}

/// A job resident on a lane: its live engine plus supervision state.
struct ActiveJob {
    id: JobId,
    sim: RunHandle,
    sup: Supervisor,
    total: u64,
    /// Persist a checkpoint whenever `steps_done` crosses a multiple of
    /// this (`None`: only at graceful shutdown).
    persist_every: Option<u64>,
    last_persisted: u64,
    /// Wall seconds this job has spent on the lane, accumulated across
    /// slices (seeded from the manifest's `wall_ms` after a resume).
    wall_s: f64,
}

fn lane_loop(lane: usize, shared: Arc<Shared>, rx: Receiver<LaneMsg>) {
    let mut local: VecDeque<ActiveJob> = VecDeque::new();
    let mut paused = shared.cfg.start_paused;
    loop {
        // Block when there is nothing to step; otherwise just drain
        // whatever arrived.
        let first = if local.is_empty() || paused {
            match rx.recv() {
                Ok(msg) => Some(msg),
                Err(_) => return,
            }
        } else {
            rx.try_recv().ok()
        };
        let mut incoming = first.into_iter().chain(std::iter::from_fn(|| rx.try_recv().ok()));
        let mut shutdown = false;
        for msg in &mut incoming {
            match msg {
                LaneMsg::Shutdown => {
                    shutdown = true;
                    break;
                }
                LaneMsg::Start => paused = false,
                LaneMsg::Run(id) => {
                    if let Some(job) = admit(JobId(id), &shared) {
                        local.push_back(job);
                    }
                }
            }
        }
        if shutdown {
            // Park in-flight jobs resumably: persist a labelled
            // checkpoint and leave the manifest non-terminal.
            for job in &mut local {
                persist_checkpoint(&shared, job);
                persist_manifest(&shared, job.id);
            }
            return;
        }
        let Some(mut job) = local.pop_front() else { continue };
        match run_slice(lane, &shared, &mut job) {
            SliceOutcome::MoreWork => local.push_back(job),
            SliceOutcome::Retired => {}
        }
    }
}

enum SliceOutcome {
    MoreWork,
    Retired,
}

/// Instantiates a newly assigned job (restoring its checkpoint when one
/// exists). Returns `None` when the job fails to build or was cancelled
/// before starting — in both cases the table entry is finalized here.
fn admit(id: JobId, shared: &Arc<Shared>) -> Option<ActiveJob> {
    let (spec, wall_ms) = {
        let mut inner = shared.inner.lock().unwrap();
        let entry = inner.jobs.get_mut(&id.0)?;
        if entry.cancel {
            entry.record.state = JobState::Cancelled;
            drop(inner);
            close_watchers(shared, id);
            persist_manifest(shared, id);
            shared.progress.notify_all();
            return None;
        }
        entry.record.state = JobState::Running;
        let out = (entry.spec.clone(), entry.record.wall_ms);
        refresh_gauges(&inner, &shared.metrics);
        out
    };
    persist_manifest(shared, id);
    let sim = match spec.instantiate_flight(Some(&id.to_string()), Some(shared.cfg.flight_ring)) {
        Ok(sim) => sim,
        Err(e) => {
            finalize_failed(shared, id, &format!("instantiation failed: {e}"));
            return None;
        }
    };
    // Publish Arc-backed handles into the table so Metrics/Dump can read
    // a job the lane exclusively owns.
    {
        let mut inner = shared.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(&id.0) {
            entry.metrics = Some(sim.metrics().clone());
            entry.tracer = Some(sim.tracer().clone());
        }
    }
    let mut job = ActiveJob {
        id,
        sim,
        sup: Supervisor::new(SupervisorConfig {
            checkpoint_every: spec.checkpoint.as_ref().map_or(u64::MAX, |c| c.every),
            max_rollbacks: shared.cfg.max_rollbacks,
            ..SupervisorConfig::default()
        }),
        total: spec.steps,
        persist_every: spec.checkpoint.as_ref().map(|c| c.every),
        last_persisted: 0,
        wall_s: wall_ms as f64 / 1e3,
    };
    // Resume: restore the persisted checkpoint if the previous daemon
    // instance parked one (labels guard against cross-job mixups).
    if let Some(dir) = job_dir(&shared.cfg, id) {
        let path = dir.join("checkpoint.bin");
        if path.exists() {
            match Checkpoint::load(&path)
                .and_then(|cp| cp.require_label(&id.to_string()).map(|()| cp))
            {
                Ok(cp) => {
                    job.sim.restore(&cp);
                    job.last_persisted = cp.step;
                    let mut inner = shared.inner.lock().unwrap();
                    if let Some(entry) = inner.jobs.get_mut(&id.0) {
                        entry.record.steps_done = cp.step;
                    }
                }
                Err(e) => {
                    finalize_failed(shared, id, &format!("stale checkpoint: {e}"));
                    return None;
                }
            }
        }
    }
    Some(job)
}

fn run_slice(_lane: usize, shared: &Arc<Shared>, job: &mut ActiveJob) -> SliceOutcome {
    // Honour cancellation at the slice boundary; the slot frees here.
    let cancelled = {
        let mut inner = shared.inner.lock().unwrap();
        match inner.jobs.get_mut(&job.id.0) {
            Some(entry) if entry.cancel => {
                entry.record.state = JobState::Cancelled;
                true
            }
            Some(_) => false,
            None => true,
        }
    };
    if cancelled {
        close_watchers(shared, job.id);
        persist_manifest(shared, job.id);
        shared.progress.notify_all();
        return SliceOutcome::Retired;
    }
    let prev = job.sim.steps_done();
    let n = shared.cfg.slice_steps.min(job.total - prev);
    let slice_start = Instant::now();
    if let Err(e) = job.sup.run(&mut job.sim, n) {
        finalize_failed(shared, job.id, &e.to_string());
        return SliceOutcome::Retired;
    }
    let elapsed = slice_start.elapsed().as_secs_f64();
    job.wall_s += elapsed;
    shared.metrics.slices.inc();
    shared.metrics.slice_ms.observe(elapsed * 1e3);
    let done = job.sim.steps_done();
    let due: Vec<Arc<WatchShared>> = {
        let mut inner = shared.inner.lock().unwrap();
        let due = match inner.jobs.get_mut(&job.id.0) {
            Some(entry) => {
                entry.record.steps_done = done;
                entry.record.wall_ms = (job.wall_s * 1e3) as u64;
                entry.watchers.iter().filter(|w| w.due(prev, done)).cloned().collect()
            }
            None => Vec::new(),
        };
        inner.trace.push((job.id, done));
        due
    };
    if !due.is_empty() {
        // One telemetry snapshot per slice, shared (cloned) across every
        // due subscriber; the engine is only read here, on its own lane.
        let doc = job.sim.telemetry().to_json_value();
        for w in &due {
            shared.metrics.watch_snapshots.inc();
            if w.push(doc.clone()) {
                shared.metrics.watch_dropped.inc();
            }
        }
    }
    if let Some(every) = job.persist_every {
        if done / every > job.last_persisted / every {
            if persist_checkpoint(shared, job) {
                job.last_persisted = done;
            }
            persist_manifest(shared, job.id);
        }
    }
    if done < job.total {
        shared.progress.notify_all();
        return SliceOutcome::MoreWork;
    }
    finalize_done(shared, job);
    SliceOutcome::Retired
}

fn finalize_done(shared: &Arc<Shared>, job: &mut ActiveJob) {
    let energy = job.sim.total_energy();
    let store = job.sim.gather();
    let final_snapshot = job.sim.telemetry().to_json_value();
    let (doc, metrics_doc, watchers) = {
        let mut inner = shared.inner.lock().unwrap();
        let Some(entry) = inner.jobs.get_mut(&job.id.0) else { return };
        let doc = observables_doc(&entry.spec.name, job.sim.steps_done(), &store, energy);
        entry.record.state = JobState::Done;
        entry.record.steps_done = job.sim.steps_done();
        entry.record.wall_ms = (job.wall_s * 1e3) as u64;
        entry.results = Some(doc.clone());
        let metrics_doc = entry
            .spec
            .observability
            .metrics
            .then(|| sc_obs::json_value(&job.sim.metrics().snapshot()));
        let watchers: Vec<_> = entry.watchers.drain(..).collect();
        refresh_gauges(&inner, &shared.metrics);
        (doc, metrics_doc, watchers)
    };
    // Every subscriber sees the completed-state snapshot before End,
    // whatever its cadence.
    for w in &watchers {
        shared.metrics.watch_snapshots.inc();
        if w.push(final_snapshot.clone()) {
            shared.metrics.watch_dropped.inc();
        }
        w.close(JobState::Done.as_str());
    }
    if let Some(dir) = job_dir(&shared.cfg, job.id) {
        let _ = write_atomic(&dir.join("results.json"), &doc.to_string());
        // Telemetry is persisted separately: it carries wall times, which
        // must not leak into the bitwise-comparable results document.
        if let Some(m) = metrics_doc {
            let _ = write_atomic(&dir.join("metrics.json"), &m.to_string());
        }
        persist_checkpoint(shared, job);
    }
    persist_manifest(shared, job.id);
    shared.progress.notify_all();
}

fn finalize_failed(shared: &Arc<Shared>, id: JobId, why: &str) {
    {
        let mut inner = shared.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(&id.0) {
            entry.record.state = JobState::Failed;
            entry.record.error = Some(why.to_string());
        }
    }
    close_watchers(shared, id);
    persist_manifest(shared, id);
    shared.progress.notify_all();
}

fn persist_manifest(shared: &Arc<Shared>, id: JobId) {
    let Some(dir) = job_dir(&shared.cfg, id) else { return };
    let record = {
        let inner = shared.inner.lock().unwrap();
        match inner.jobs.get(&id.0) {
            Some(entry) => entry.record.clone(),
            None => return,
        }
    };
    if write_atomic(&dir.join("manifest.json"), &record.to_json().to_string()).is_ok() {
        shared.metrics.manifests.inc();
    }
}

/// Returns whether the labelled checkpoint actually hit disk.
fn persist_checkpoint(shared: &Arc<Shared>, job: &ActiveJob) -> bool {
    let Some(dir) = job_dir(&shared.cfg, job.id) else { return false };
    let cp = job.sim.checkpoint().with_label(job.id.to_string());
    let saved = cp.save(&dir.join("checkpoint.bin")).is_ok();
    if saved {
        shared.metrics.checkpoints.inc();
    }
    saved
}
