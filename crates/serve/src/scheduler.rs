//! The multi-tenant job scheduler: worker lanes, fair round-robin
//! time-slicing, bounded admission, cancellation, and per-job checkpoint
//! persistence.
//!
//! ## Design
//!
//! Jobs are pinned to a **lane** (`id % lanes`) at submission; each lane
//! is one worker thread that owns its jobs' live simulation state and
//! steps them cooperatively, [`SchedulerConfig::slice_steps`] at a time,
//! in strict round-robin order. Pinning keeps the engines on the thread
//! that created them (no `Send` requirement on executor internals) and
//! makes per-lane scheduling order deterministic — the fairness tests
//! assert the exact interleaving.
//!
//! Each job is driven through a per-job [`sc_md::Supervisor`] over
//! [`sc_spec::RunHandle`]'s `Recoverable` impl, so a served job with a
//! fault plan gets the same rollback/re-decomposition ladder as
//! `scmd chaos` runs. Unrecovered faults fail only that job; the lane and
//! its other tenants keep running.
//!
//! With a state directory configured, every job persists its spec, a
//! manifest, and (on its checkpoint schedule and at graceful shutdown) a
//! labelled checkpoint — enough for [`Scheduler::new`] with
//! `resume = true` to reload the table and continue interrupted jobs
//! after a daemon restart. Trajectories are deterministic and checkpoint
//! restore is bitwise, so a resumed job's final observables are
//! byte-identical to an uninterrupted run's.

use crate::job::{JobId, JobRecord, JobState};
use crossbeam_channel::{unbounded, Receiver, Sender};
use sc_md::supervisor::{Supervisor, SupervisorConfig};
use sc_md::Checkpoint;
use sc_obs::json::Json;
use sc_spec::{observables_doc, RunHandle, ScenarioSpec, SpecError};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler policy.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker lanes (stepping threads). Jobs are pinned `id % lanes`.
    pub lanes: usize,
    /// Maximum live (queued + running) jobs; submission beyond this is
    /// rejected with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Steps granted per scheduling slice.
    pub slice_steps: u64,
    /// Persistence root (specs, manifests, checkpoints, results). `None`
    /// runs fully in-memory (no restart resume).
    pub state_dir: Option<PathBuf>,
    /// Rollback budget per job for fault recovery.
    pub max_rollbacks: u32,
    /// Start with the lanes admitting but not stepping, until
    /// [`Scheduler::start`] — lets a batch of submissions land before any
    /// slicing begins, making the scheduling order exactly reproducible
    /// (the fairness tests rely on this).
    pub start_paused: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            lanes: 2,
            queue_capacity: 8,
            slice_steps: 4,
            state_dir: None,
            max_rollbacks: 64,
            start_paused: false,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// The live-job cap is reached; retry after a job finishes.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// The spec failed validation.
    Spec(SpecError),
    /// The spec is valid but cannot be served (e.g. the one-shot threaded
    /// executor, which cannot be checkpointed or time-sliced).
    Unservable(String),
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full: {capacity} jobs already live")
            }
            SubmitError::Spec(e) => write!(f, "invalid spec: {e}"),
            SubmitError::Unservable(why) => write!(f, "spec cannot be served: {why}"),
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

/// One job's bookkeeping entry.
struct JobEntry {
    record: JobRecord,
    spec: ScenarioSpec,
    /// Cooperative cancellation flag; the lane honours it at the next
    /// slice boundary.
    cancel: bool,
    /// The observables document, once [`JobState::Done`].
    results: Option<Json>,
}

struct Inner {
    jobs: BTreeMap<u64, JobEntry>,
    next_id: u64,
    shutting_down: bool,
    /// `(job, steps_done)` after every completed slice — the scheduling
    /// trace the fairness tests assert on.
    trace: Vec<(JobId, u64)>,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signalled on every terminal transition (and slice) for
    /// [`Scheduler::wait_idle`].
    progress: Condvar,
    cfg: SchedulerConfig,
}

enum LaneMsg {
    Run(u64),
    /// Begin slicing (only sent when configured `start_paused`).
    Start,
    Shutdown,
}

/// The job service's scheduling core (used directly by tests and wrapped
/// by the socket daemon).
pub struct Scheduler {
    shared: Arc<Shared>,
    lanes: Vec<Sender<LaneMsg>>,
    threads: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Starts the lanes. With `resume` set and a state directory
    /// configured, reloads persisted jobs first: terminal jobs reappear
    /// with their results, interrupted jobs restart from their last
    /// checkpoint (or from scratch) and run to completion.
    ///
    /// # Errors
    /// I/O problems creating or scanning the state directory.
    pub fn new(cfg: SchedulerConfig, resume: bool) -> std::io::Result<Scheduler> {
        assert!(cfg.lanes >= 1, "scheduler needs at least one lane");
        assert!(cfg.slice_steps >= 1, "slices must make progress");
        if let Some(dir) = &cfg.state_dir {
            std::fs::create_dir_all(dir.join("jobs"))?;
        }
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                next_id: 0,
                shutting_down: false,
                trace: Vec::new(),
            }),
            progress: Condvar::new(),
            cfg: cfg.clone(),
        });
        let mut lanes = Vec::new();
        let mut threads = Vec::new();
        for lane in 0..cfg.lanes {
            let (tx, rx) = unbounded();
            let shared2 = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sc-serve-lane-{lane}"))
                    .spawn(move || lane_loop(lane, shared2, rx))?,
            );
            lanes.push(tx);
        }
        let sched = Scheduler { shared, lanes, threads };
        if resume {
            sched.resume_persisted()?;
        }
        Ok(sched)
    }

    /// Submits a spec as a new job.
    ///
    /// # Errors
    /// See [`SubmitError`]; admission is atomic — a rejected submission
    /// leaves no trace.
    pub fn submit(&self, spec: ScenarioSpec) -> Result<JobId, SubmitError> {
        spec.validate().map_err(SubmitError::Spec)?;
        if spec.executor.kind() == "threaded" {
            return Err(SubmitError::Unservable(
                "the threaded executor is one-shot and cannot be time-sliced; \
                 run it with 'scmd run --spec'"
                    .to_string(),
            ));
        }
        let (id, lane) = {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.shutting_down {
                return Err(SubmitError::ShuttingDown);
            }
            let live = inner.jobs.values().filter(|j| !j.record.state.is_terminal()).count();
            if live >= self.shared.cfg.queue_capacity {
                return Err(SubmitError::QueueFull { capacity: self.shared.cfg.queue_capacity });
            }
            let id = JobId(inner.next_id);
            inner.next_id += 1;
            let lane = (id.0 as usize) % self.lanes.len();
            let record = JobRecord::new(id, &spec.name, spec.steps, lane);
            if let Some(dir) = job_dir(&self.shared.cfg, id) {
                // Persist spec + manifest before the job becomes visible,
                // so a crash never leaves an unrecoverable table entry.
                let persisted = std::fs::create_dir_all(&dir)
                    .and_then(|()| {
                        write_atomic(&dir.join("spec.json"), &spec.to_json().to_string())
                    })
                    .and_then(|()| {
                        write_atomic(&dir.join("manifest.json"), &record.to_json().to_string())
                    });
                if let Err(e) = persisted {
                    return Err(SubmitError::Unservable(format!("cannot persist job state: {e}")));
                }
            }
            inner.jobs.insert(id.0, JobEntry { record, spec, cancel: false, results: None });
            (id, lane)
        };
        // The lane threads outlive every submit (they only exit in
        // shutdown, which flips `shutting_down` first).
        self.lanes[lane].send(LaneMsg::Run(id.0)).expect("lane thread alive");
        Ok(id)
    }

    /// One job's current record.
    pub fn status(&self, id: JobId) -> Option<JobRecord> {
        self.shared.inner.lock().unwrap().jobs.get(&id.0).map(|j| j.record.clone())
    }

    /// The whole job table, ordered by id.
    pub fn list(&self) -> Vec<JobRecord> {
        self.shared.inner.lock().unwrap().jobs.values().map(|j| j.record.clone()).collect()
    }

    /// Requests cancellation. Returns `true` if the job was live (the
    /// lane will retire it at the next slice boundary and release its
    /// slot), `false` if unknown or already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut inner = self.shared.inner.lock().unwrap();
        match inner.jobs.get_mut(&id.0) {
            Some(entry) if !entry.record.state.is_terminal() => {
                entry.cancel = true;
                true
            }
            _ => false,
        }
    }

    /// A finished job's observables document.
    pub fn results(&self, id: JobId) -> Option<Json> {
        self.shared.inner.lock().unwrap().jobs.get(&id.0).and_then(|j| j.results.clone())
    }

    /// Blocks until every job is terminal (or `timeout`); returns whether
    /// the table is idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.jobs.values().all(|j| j.record.state.is_terminal()) {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self.shared.progress.wait_timeout(inner, left).unwrap();
            inner = guard;
        }
    }

    /// The slice-order trace: `(job, steps_done)` after each slice, in
    /// execution order. Test observability for fairness assertions.
    pub fn trace(&self) -> Vec<(JobId, u64)> {
        self.shared.inner.lock().unwrap().trace.clone()
    }

    /// Releases lanes started under [`SchedulerConfig::start_paused`].
    pub fn start(&self) {
        for tx in &self.lanes {
            let _ = tx.send(LaneMsg::Start);
        }
    }

    /// Stops accepting work, checkpoints in-flight jobs, and joins the
    /// lanes. Queued/running jobs stay non-terminal in the persisted
    /// manifests, so a later `resume` continues them.
    pub fn shutdown(mut self) {
        self.shared.inner.lock().unwrap().shutting_down = true;
        for tx in &self.lanes {
            let _ = tx.send(LaneMsg::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Reloads the persisted job table (see [`Scheduler::new`]).
    fn resume_persisted(&self) -> std::io::Result<()> {
        let Some(dir) = self.shared.cfg.state_dir.clone() else {
            return Ok(());
        };
        let mut job_ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir.join("jobs"))? {
            if let Some(id) = entry?.file_name().to_str().and_then(JobId::parse).map(|j| j.0) {
                job_ids.push(id);
            }
        }
        job_ids.sort_unstable();
        let mut restarts = Vec::new();
        {
            let mut inner = self.shared.inner.lock().unwrap();
            for raw in job_ids {
                let id = JobId(raw);
                let dir = job_dir(&self.shared.cfg, id).expect("state_dir is set");
                let Ok(mut record) = read_json(&dir.join("manifest.json"))
                    .and_then(|doc| JobRecord::from_json(&doc))
                else {
                    continue; // torn write of a brand-new job: skip
                };
                let Ok(spec) = read_json(&dir.join("spec.json"))
                    .and_then(|doc| ScenarioSpec::from_json(&doc).map_err(|e| e.to_string()))
                else {
                    continue;
                };
                let results = read_json(&dir.join("results.json")).ok();
                if !record.state.is_terminal() {
                    // Interrupted: re-queue on the lane derived from the id
                    // (the lane count may have changed across restarts).
                    record.state = JobState::Queued;
                    record.lane = (raw as usize) % self.lanes.len();
                    restarts.push((raw, record.lane));
                }
                inner.next_id = inner.next_id.max(raw + 1);
                inner.jobs.insert(raw, JobEntry { record, spec, cancel: false, results });
            }
        }
        for (raw, lane) in restarts {
            self.lanes[lane].send(LaneMsg::Run(raw)).expect("lane thread alive");
        }
        Ok(())
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.inner.lock().unwrap().shutting_down = true;
        for tx in &self.lanes {
            let _ = tx.send(LaneMsg::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn job_dir(cfg: &SchedulerConfig, id: JobId) -> Option<PathBuf> {
    cfg.state_dir.as_ref().map(|d| d.join("jobs").join(id.to_string()))
}

/// Writes via a temp file + rename, so readers never observe torn JSON.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn read_json(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Json::parse(&text).map_err(|e| e.to_string())
}

/// A job resident on a lane: its live engine plus supervision state.
struct ActiveJob {
    id: JobId,
    sim: RunHandle,
    sup: Supervisor,
    total: u64,
    /// Persist a checkpoint whenever `steps_done` crosses a multiple of
    /// this (`None`: only at graceful shutdown).
    persist_every: Option<u64>,
    last_persisted: u64,
}

fn lane_loop(lane: usize, shared: Arc<Shared>, rx: Receiver<LaneMsg>) {
    let mut local: VecDeque<ActiveJob> = VecDeque::new();
    let mut paused = shared.cfg.start_paused;
    loop {
        // Block when there is nothing to step; otherwise just drain
        // whatever arrived.
        let first = if local.is_empty() || paused {
            match rx.recv() {
                Ok(msg) => Some(msg),
                Err(_) => return,
            }
        } else {
            rx.try_recv().ok()
        };
        let mut incoming = first.into_iter().chain(std::iter::from_fn(|| rx.try_recv().ok()));
        let mut shutdown = false;
        for msg in &mut incoming {
            match msg {
                LaneMsg::Shutdown => {
                    shutdown = true;
                    break;
                }
                LaneMsg::Start => paused = false,
                LaneMsg::Run(id) => {
                    if let Some(job) = admit(JobId(id), &shared) {
                        local.push_back(job);
                    }
                }
            }
        }
        if shutdown {
            // Park in-flight jobs resumably: persist a labelled
            // checkpoint and leave the manifest non-terminal.
            for job in &mut local {
                persist_checkpoint(&shared, job);
                persist_manifest(&shared, job.id);
            }
            return;
        }
        let Some(mut job) = local.pop_front() else { continue };
        match run_slice(lane, &shared, &mut job) {
            SliceOutcome::MoreWork => local.push_back(job),
            SliceOutcome::Retired => {}
        }
    }
}

enum SliceOutcome {
    MoreWork,
    Retired,
}

/// Instantiates a newly assigned job (restoring its checkpoint when one
/// exists). Returns `None` when the job fails to build or was cancelled
/// before starting — in both cases the table entry is finalized here.
fn admit(id: JobId, shared: &Arc<Shared>) -> Option<ActiveJob> {
    let spec = {
        let mut inner = shared.inner.lock().unwrap();
        let entry = inner.jobs.get_mut(&id.0)?;
        if entry.cancel {
            entry.record.state = JobState::Cancelled;
            drop(inner);
            persist_manifest(shared, id);
            shared.progress.notify_all();
            return None;
        }
        entry.record.state = JobState::Running;
        entry.spec.clone()
    };
    persist_manifest(shared, id);
    let sim = match spec.instantiate_labeled(Some(&id.to_string())) {
        Ok(sim) => sim,
        Err(e) => {
            finalize_failed(shared, id, &format!("instantiation failed: {e}"));
            return None;
        }
    };
    let mut job = ActiveJob {
        id,
        sim,
        sup: Supervisor::new(SupervisorConfig {
            checkpoint_every: spec.checkpoint.as_ref().map_or(u64::MAX, |c| c.every),
            max_rollbacks: shared.cfg.max_rollbacks,
            ..SupervisorConfig::default()
        }),
        total: spec.steps,
        persist_every: spec.checkpoint.as_ref().map(|c| c.every),
        last_persisted: 0,
    };
    // Resume: restore the persisted checkpoint if the previous daemon
    // instance parked one (labels guard against cross-job mixups).
    if let Some(dir) = job_dir(&shared.cfg, id) {
        let path = dir.join("checkpoint.bin");
        if path.exists() {
            match Checkpoint::load(&path)
                .and_then(|cp| cp.require_label(&id.to_string()).map(|()| cp))
            {
                Ok(cp) => {
                    job.sim.restore(&cp);
                    job.last_persisted = cp.step;
                    let mut inner = shared.inner.lock().unwrap();
                    if let Some(entry) = inner.jobs.get_mut(&id.0) {
                        entry.record.steps_done = cp.step;
                    }
                }
                Err(e) => {
                    finalize_failed(shared, id, &format!("stale checkpoint: {e}"));
                    return None;
                }
            }
        }
    }
    Some(job)
}

fn run_slice(_lane: usize, shared: &Arc<Shared>, job: &mut ActiveJob) -> SliceOutcome {
    // Honour cancellation at the slice boundary; the slot frees here.
    let cancelled = {
        let mut inner = shared.inner.lock().unwrap();
        match inner.jobs.get_mut(&job.id.0) {
            Some(entry) if entry.cancel => {
                entry.record.state = JobState::Cancelled;
                true
            }
            Some(_) => false,
            None => true,
        }
    };
    if cancelled {
        persist_manifest(shared, job.id);
        shared.progress.notify_all();
        return SliceOutcome::Retired;
    }
    let done = job.sim.steps_done();
    let n = shared.cfg.slice_steps.min(job.total - done);
    if let Err(e) = job.sup.run(&mut job.sim, n) {
        finalize_failed(shared, job.id, &e.to_string());
        return SliceOutcome::Retired;
    }
    let done = job.sim.steps_done();
    {
        let mut inner = shared.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(&job.id.0) {
            entry.record.steps_done = done;
        }
        inner.trace.push((job.id, done));
    }
    if let Some(every) = job.persist_every {
        if done / every > job.last_persisted / every {
            if persist_checkpoint(shared, job) {
                job.last_persisted = done;
            }
            persist_manifest(shared, job.id);
        }
    }
    if done < job.total {
        shared.progress.notify_all();
        return SliceOutcome::MoreWork;
    }
    finalize_done(shared, job);
    SliceOutcome::Retired
}

fn finalize_done(shared: &Arc<Shared>, job: &mut ActiveJob) {
    let energy = job.sim.total_energy();
    let store = job.sim.gather();
    let (doc, metrics_doc) = {
        let mut inner = shared.inner.lock().unwrap();
        let Some(entry) = inner.jobs.get_mut(&job.id.0) else { return };
        let doc = observables_doc(&entry.spec.name, job.sim.steps_done(), &store, energy);
        entry.record.state = JobState::Done;
        entry.record.steps_done = job.sim.steps_done();
        entry.results = Some(doc.clone());
        let metrics_doc = entry
            .spec
            .observability
            .metrics
            .then(|| sc_obs::json_value(&job.sim.metrics().snapshot()));
        (doc, metrics_doc)
    };
    if let Some(dir) = job_dir(&shared.cfg, job.id) {
        let _ = write_atomic(&dir.join("results.json"), &doc.to_string());
        // Telemetry is persisted separately: it carries wall times, which
        // must not leak into the bitwise-comparable results document.
        if let Some(m) = metrics_doc {
            let _ = write_atomic(&dir.join("metrics.json"), &m.to_string());
        }
        persist_checkpoint(shared, job);
    }
    persist_manifest(shared, job.id);
    shared.progress.notify_all();
}

fn finalize_failed(shared: &Arc<Shared>, id: JobId, why: &str) {
    {
        let mut inner = shared.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(&id.0) {
            entry.record.state = JobState::Failed;
            entry.record.error = Some(why.to_string());
        }
    }
    persist_manifest(shared, id);
    shared.progress.notify_all();
}

fn persist_manifest(shared: &Arc<Shared>, id: JobId) {
    let Some(dir) = job_dir(&shared.cfg, id) else { return };
    let record = {
        let inner = shared.inner.lock().unwrap();
        match inner.jobs.get(&id.0) {
            Some(entry) => entry.record.clone(),
            None => return,
        }
    };
    let _ = write_atomic(&dir.join("manifest.json"), &record.to_json().to_string());
}

/// Returns whether the labelled checkpoint actually hit disk.
fn persist_checkpoint(shared: &Arc<Shared>, job: &ActiveJob) -> bool {
    let Some(dir) = job_dir(&shared.cfg, job.id) else { return false };
    let cp = job.sim.checkpoint().with_label(job.id.to_string());
    cp.save(&dir.join("checkpoint.bin")).is_ok()
}
