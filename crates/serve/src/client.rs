//! The client side of the wire protocol: one request, one response, over
//! a short-lived Unix-socket connection — plus the streaming [`watch`]
//! subscription, which holds its connection open for server-pushed
//! telemetry lines.

use crate::protocol::{Request, Response};
use sc_obs::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Sends one request to the daemon at `socket` and decodes the response.
///
/// # Errors
/// Connection failures (`ConnectionRefused` usually means no daemon is
/// serving), I/O errors, or a malformed response line.
pub fn request(socket: &Path, req: &Request) -> std::io::Result<Response> {
    let mut stream = UnixStream::connect(socket)?;
    stream.write_all(req.to_json().to_string().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    decode(&line)
}

/// Subscribes to a running job's telemetry stream and feeds every pushed
/// response line (`watching`, `telemetry` snapshots, the final
/// `watch-end` — or an immediate `error`) to `on_event`. Returns when
/// the stream ends, the daemon closes the connection, or `on_event`
/// returns `false` (client-side early stop, e.g. a `--count` limit).
///
/// # Errors
/// Connection failures, I/O errors, or a malformed response line.
pub fn watch(
    socket: &Path,
    id: &str,
    every: Option<u64>,
    mut on_event: impl FnMut(&Response) -> bool,
) -> std::io::Result<()> {
    let req = Request::Watch { id: id.to_string(), every };
    let mut stream = UnixStream::connect(socket)?;
    stream.write_all(req.to_json().to_string().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    for line in BufReader::new(stream).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let resp = decode(&line)?;
        let ended = matches!(resp, Response::WatchEnd { .. } | Response::Error { .. });
        let keep_going = on_event(&resp);
        if ended || !keep_going {
            break;
        }
    }
    Ok(())
}

fn decode(line: &str) -> std::io::Result<Response> {
    Json::parse(line.trim())
        .map_err(|e| e.to_string())
        .and_then(|doc| Response::from_json(&doc))
        .map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed daemon response: {e}"),
            )
        })
}
