//! The client side of the wire protocol: one request, one response, over
//! a short-lived Unix-socket connection.

use crate::protocol::{Request, Response};
use sc_obs::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Sends one request to the daemon at `socket` and decodes the response.
///
/// # Errors
/// Connection failures (`ConnectionRefused` usually means no daemon is
/// serving), I/O errors, or a malformed response line.
pub fn request(socket: &Path, req: &Request) -> std::io::Result<Response> {
    let mut stream = UnixStream::connect(socket)?;
    stream.write_all(req.to_json().to_string().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    Json::parse(line.trim())
        .map_err(|e| e.to_string())
        .and_then(|doc| Response::from_json(&doc))
        .map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed daemon response: {e}"),
            )
        })
}
