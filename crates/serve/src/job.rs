//! Job identity, lifecycle states, and the persisted job manifest.

use sc_obs::json::Json;
use std::fmt;

/// Schema identifier of the persisted job manifest.
pub const MANIFEST_SCHEMA_ID: &str = "sc-job/1";

/// A job's identity: a small integer assigned at submission, rendered
/// everywhere (socket protocol, state directory, metrics label) as
/// `job-<n>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl JobId {
    /// Parses the `job-<n>` wire form.
    pub fn parse(s: &str) -> Option<JobId> {
        s.strip_prefix("job-")?.parse().ok().map(JobId)
    }
}

/// The job lifecycle. Transitions are strictly forward:
/// `Queued → Running → {Done, Failed, Cancelled}` (a queued job may also
/// jump straight to `Cancelled` or `Failed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for its lane to pick it up.
    Queued,
    /// Instantiated on a lane and receiving step slices.
    Running,
    /// Completed all steps; results are available.
    Done,
    /// Aborted by an unrecovered fault or an invalid spec; the failure
    /// reason is in [`JobRecord::error`].
    Failed,
    /// Cancelled by a client before completion.
    Cancelled,
}

impl JobState {
    /// Whether the job will never run again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }

    /// The wire/manifest name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses the wire/manifest name.
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything the service tracks about one job, as shown to clients and
/// persisted as `manifest.json` in the job's state directory.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job's identity.
    pub id: JobId,
    /// The `name` field of the submitted scenario spec.
    pub spec_name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Steps completed so far.
    pub steps_done: u64,
    /// Steps the spec asks for.
    pub total_steps: u64,
    /// Wall milliseconds this job has spent on its lane so far (live
    /// progress for `Status`; never part of the observables document).
    pub wall_ms: u64,
    /// The worker lane the job is pinned to.
    pub lane: usize,
    /// Failure reason, when [`JobState::Failed`].
    pub error: Option<String>,
}

impl JobRecord {
    /// A freshly accepted job.
    pub fn new(id: JobId, spec_name: &str, total_steps: u64, lane: usize) -> Self {
        JobRecord {
            id,
            spec_name: spec_name.to_string(),
            state: JobState::Queued,
            steps_done: 0,
            total_steps,
            wall_ms: 0,
            lane,
            error: None,
        }
    }

    /// The manifest / wire form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".to_string(), Json::str(MANIFEST_SCHEMA_ID)),
            ("id".to_string(), Json::str(self.id.to_string())),
            ("spec_name".to_string(), Json::str(&self.spec_name)),
            ("state".to_string(), Json::str(self.state.as_str())),
            ("steps_done".to_string(), Json::num(self.steps_done as f64)),
            ("total_steps".to_string(), Json::num(self.total_steps as f64)),
            ("wall_ms".to_string(), Json::num(self.wall_ms as f64)),
            ("lane".to_string(), Json::num(self.lane as f64)),
        ];
        if let Some(e) = &self.error {
            fields.push(("error".to_string(), Json::str(e)));
        }
        Json::Obj(fields)
    }

    /// Decodes a manifest; the error names what is malformed.
    pub fn from_json(doc: &Json) -> Result<JobRecord, String> {
        let str_field = |k: &str| -> Result<&str, String> {
            doc.get(k).and_then(Json::as_str).ok_or_else(|| format!("manifest missing '{k}'"))
        };
        let num_field = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_f64)
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as u64)
                .ok_or_else(|| format!("manifest missing '{k}'"))
        };
        if str_field("schema")? != MANIFEST_SCHEMA_ID {
            return Err(format!("manifest schema is not {MANIFEST_SCHEMA_ID}"));
        }
        Ok(JobRecord {
            id: JobId::parse(str_field("id")?)
                .ok_or_else(|| "manifest 'id' is not job-<n>".to_string())?,
            spec_name: str_field("spec_name")?.to_string(),
            state: JobState::parse(str_field("state")?)
                .ok_or_else(|| "manifest 'state' unknown".to_string())?,
            steps_done: num_field("steps_done")?,
            total_steps: num_field("total_steps")?,
            // Absent in pre-telemetry manifests: default to 0 so old
            // state directories keep resuming.
            wall_ms: if doc.get("wall_ms").is_some() { num_field("wall_ms")? } else { 0 },
            lane: num_field("lane")? as usize,
            error: doc.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_round_trips_through_its_wire_form() {
        let id = JobId(17);
        assert_eq!(id.to_string(), "job-17");
        assert_eq!(JobId::parse("job-17"), Some(id));
        assert_eq!(JobId::parse("17"), None);
        assert_eq!(JobId::parse("job-x"), None);
    }

    #[test]
    fn manifest_round_trips_including_error() {
        let mut rec = JobRecord::new(JobId(3), "lj-demo", 100, 1);
        rec.state = JobState::Failed;
        rec.steps_done = 42;
        rec.wall_ms = 1234;
        rec.error = Some("rank 2 died".to_string());
        let back = JobRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
        // And without the optional error field.
        let rec = JobRecord::new(JobId(0), "x", 1, 0);
        assert_eq!(JobRecord::from_json(&rec.to_json()).unwrap(), rec);
    }

    #[test]
    fn manifests_without_wall_ms_still_parse() {
        // State directories written before live progress tracking carry
        // no wall_ms; resume must not reject them.
        let doc = Json::parse(
            r#"{"schema": "sc-job/1", "id": "job-4", "spec_name": "old", "state": "queued",
                "steps_done": 0, "total_steps": 8, "lane": 0}"#,
        )
        .unwrap();
        let rec = JobRecord::from_json(&doc).unwrap();
        assert_eq!(rec.wall_ms, 0);
        assert_eq!(rec.id, JobId(4));
    }

    #[test]
    fn terminal_states_are_exactly_done_failed_cancelled() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        for s in ["queued", "running", "done", "failed", "cancelled"] {
            assert_eq!(JobState::parse(s).unwrap().as_str(), s);
        }
    }
}
