//! Watch-stream subscriptions: bounded per-subscriber snapshot queues.
//!
//! A `Watch` subscriber gets a [`WatchHandle`] over a small bounded
//! queue. The scheduler lane is the producer: at each slice boundary it
//! pushes the job's `Telemetry` snapshot (when the subscriber's cadence
//! is due) and never blocks — a full queue **drops the oldest** snapshot
//! and counts the drop, so a slow or stuck client can never stall the
//! lane or perturb the job's step cadence. The connection thread is the
//! consumer, draining events and writing them to its socket at whatever
//! pace the client sustains.

use sc_obs::json::Json;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One event delivered to a watch subscriber.
#[derive(Debug, Clone, PartialEq)]
pub enum WatchEvent {
    /// A telemetry snapshot (the `schema/metrics.schema.json` document).
    Snapshot {
        /// Snapshot sequence number (counts every snapshot produced for
        /// this subscriber, including ones later dropped).
        seq: u64,
        /// Cumulative snapshots dropped to queue overflow so far.
        dropped: u64,
        /// The telemetry document.
        doc: Json,
    },
    /// The job reached a terminal state (or the daemon is shutting
    /// down); no further snapshots will arrive.
    End {
        /// The job's state name at stream end.
        state: String,
        /// Cumulative snapshots dropped over the stream's lifetime.
        dropped: u64,
    },
    /// `recv` timed out with the stream still open.
    TimedOut,
}

#[derive(Debug)]
struct WatchState {
    items: VecDeque<(u64, Json)>,
    dropped: u64,
    next_seq: u64,
    end: Option<String>,
}

/// Producer/consumer shared core of one subscription.
#[derive(Debug)]
pub(crate) struct WatchShared {
    state: Mutex<WatchState>,
    cv: Condvar,
    cap: usize,
    /// Snapshot cadence in steps (`0`: every slice boundary).
    pub(crate) every: u64,
}

impl WatchShared {
    pub(crate) fn new(cap: usize, every: u64) -> Arc<WatchShared> {
        Arc::new(WatchShared {
            state: Mutex::new(WatchState {
                items: VecDeque::new(),
                dropped: 0,
                next_seq: 0,
                end: None,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
            every,
        })
    }

    /// Whether `steps_done` advancing from `prev` to `now` crosses this
    /// subscriber's cadence (always true for per-slice cadence 0).
    pub(crate) fn due(&self, prev: u64, now: u64) -> bool {
        self.every == 0 || now / self.every > prev / self.every
    }

    /// Enqueues a snapshot; drop-oldest on overflow, never blocks.
    /// Returns whether an old snapshot was dropped.
    pub(crate) fn push(&self, doc: Json) -> bool {
        let mut s = self.state.lock().unwrap();
        if s.end.is_some() {
            return false;
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        let overflow = s.items.len() >= self.cap;
        if overflow {
            s.items.pop_front();
            s.dropped += 1;
        }
        s.items.push_back((seq, doc));
        drop(s);
        self.cv.notify_all();
        overflow
    }

    /// Marks the stream ended (terminal job state or daemon shutdown).
    /// Queued snapshots stay drainable; `End` is delivered after them.
    pub(crate) fn close(&self, state: &str) {
        let mut s = self.state.lock().unwrap();
        if s.end.is_none() {
            s.end = Some(state.to_string());
        }
        drop(s);
        self.cv.notify_all();
    }
}

/// The consumer side of one watch subscription.
#[derive(Debug)]
pub struct WatchHandle {
    pub(crate) shared: Arc<WatchShared>,
}

impl WatchHandle {
    /// The effective snapshot cadence in steps (`0`: every slice).
    pub fn every(&self) -> u64 {
        self.shared.every
    }

    /// Snapshots dropped to queue overflow so far.
    pub fn dropped(&self) -> u64 {
        self.shared.state.lock().unwrap().dropped
    }

    /// Blocks up to `timeout` for the next event. Queued snapshots drain
    /// in order; once the stream is closed and drained, returns
    /// [`WatchEvent::End`] (repeatedly, if called again).
    pub fn recv(&self, timeout: Duration) -> WatchEvent {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.shared.state.lock().unwrap();
        loop {
            if let Some((seq, doc)) = s.items.pop_front() {
                return WatchEvent::Snapshot { seq, dropped: s.dropped, doc };
            }
            if let Some(state) = &s.end {
                return WatchEvent::End { state: state.clone(), dropped: s.dropped };
            }
            let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return WatchEvent::TimedOut;
            };
            let (guard, _) = self.shared.cv.wait_timeout(s, left).unwrap();
            s = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(step: u64) -> Json {
        Json::Obj(vec![("step".to_string(), Json::num(step as f64))])
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let shared = WatchShared::new(2, 0);
        let handle = WatchHandle { shared: Arc::clone(&shared) };
        assert!(!shared.push(doc(1)));
        assert!(!shared.push(doc(2)));
        assert!(shared.push(doc(3)), "third push must overflow a cap-2 queue");
        // The oldest snapshot (seq 0) is gone; seq 1 and 2 survive with
        // the drop counted.
        match handle.recv(Duration::from_millis(10)) {
            WatchEvent::Snapshot { seq: 1, dropped: 1, .. } => {}
            other => panic!("unexpected event {other:?}"),
        }
        match handle.recv(Duration::from_millis(10)) {
            WatchEvent::Snapshot { seq: 2, dropped: 1, .. } => {}
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(handle.recv(Duration::from_millis(1)), WatchEvent::TimedOut);
        assert_eq!(handle.dropped(), 1);
    }

    #[test]
    fn close_delivers_end_after_queued_snapshots() {
        let shared = WatchShared::new(4, 0);
        let handle = WatchHandle { shared: Arc::clone(&shared) };
        shared.push(doc(1));
        shared.close("done");
        assert!(matches!(handle.recv(Duration::from_millis(10)), WatchEvent::Snapshot { .. }));
        let end = WatchEvent::End { state: "done".to_string(), dropped: 0 };
        assert_eq!(handle.recv(Duration::from_millis(10)), end);
        // End is sticky and pushes after close are ignored.
        assert!(!shared.push(doc(2)));
        assert_eq!(handle.recv(Duration::from_millis(10)), end);
    }

    #[test]
    fn cadence_triggers_on_multiple_crossings() {
        let w = WatchShared::new(1, 10);
        assert!(!w.due(0, 9));
        assert!(w.due(9, 10));
        assert!(w.due(15, 31), "a slice can cross several multiples");
        assert!(!w.due(10, 19));
        let every_slice = WatchShared::new(1, 0);
        assert!(every_slice.due(3, 3), "cadence 0 fires at every slice");
    }
}
