//! Flight-recorder contract tests: `dump` on a running BSP job yields a
//! merge-ordered Chrome-trace document with events inside the step
//! window, and a job whose spec disables its ring answers with a typed
//! error instead of an empty trace.

use sc_serve::{DumpError, JobId, Scheduler, SchedulerConfig, WatchEvent};
use sc_spec::ScenarioSpec;
use std::time::{Duration, Instant};

const IDLE: Duration = Duration::from_secs(120);

/// A 2-rank BSP LJ scenario; `extra` appends spec fields.
fn bsp_spec(name: &str, steps: u64, extra: &str) -> ScenarioSpec {
    let doc = format!(
        r#"{{
            "schema": "sc-scenario/1",
            "name": "{name}",
            "system": {{"kind": "lj", "cells": 7, "temp": 1.0, "seed": 42}},
            "potential": {{"kind": "lj", "cutoff": 2.5}},
            "method": "sc",
            "executor": {{"kind": "bsp", "grid": [2, 1, 1]}},
            "dt": 0.002,
            "steps": {steps}{extra}
        }}"#
    );
    ScenarioSpec::from_json_str(&doc).unwrap()
}

#[test]
fn dump_on_a_running_bsp_job_is_merge_ordered_and_inside_the_step_window() {
    let total = 200;
    let cfg = SchedulerConfig {
        lanes: 1,
        slice_steps: 4,
        watch_queue: 256,
        start_paused: true,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::new(cfg, false).unwrap();
    // No `trace` and no `ring` in the spec: the scheduler's default
    // flight ring must arm the recorder on its own.
    let id = sched.submit(bsp_spec("flight", total, "")).unwrap();
    let watch = sched.watch(id, Some(0)).unwrap();
    sched.start();
    // The first snapshot proves at least one slice ran — with 200 steps
    // total the job is still mid-flight when we dump right after.
    match watch.recv(Duration::from_secs(60)) {
        WatchEvent::Snapshot { .. } => {}
        other => panic!("expected a first snapshot, got {other:?}"),
    }
    let dump = sched.dump(id).unwrap();
    assert_eq!(dump.id, id);
    assert!(dump.step >= 4, "dump landed before the first slice: step {}", dump.step);
    assert!(dump.step < total, "dump landed after completion: step {}", dump.step);
    assert!(dump.events > 0, "an armed ring must have captured events");

    let rows = dump.doc.get("traceEvents").unwrap().as_array().unwrap();
    let mut steps = Vec::new();
    for row in rows {
        if row.get("ph").and_then(|v| v.as_str()) == Some("M") {
            continue; // process-name metadata
        }
        // Chrome Trace Format: every event row carries the required fields.
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(row.get(key).is_some(), "trace row missing '{key}': {row}");
        }
        let step = row
            .get("args")
            .and_then(|a| a.get("step"))
            .and_then(|v| v.as_f64())
            .expect("every event is stamped with its step") as u64;
        steps.push(step);
    }
    assert_eq!(steps.len() as u64, dump.events);
    // events() merges the per-thread rings by (step, rank, time): the
    // document must come out step-ordered, all inside the run's window.
    assert!(steps.windows(2).all(|w| w[0] <= w[1]), "merge order broken: {steps:?}");
    assert!(steps.iter().all(|s| *s <= total), "event outside the step window: {steps:?}");

    assert!(sched.wait_idle(IDLE));
    assert!(sched.results(id).is_some(), "the dumped job still finishes normally");
}

#[test]
fn disabled_ring_and_unknown_jobs_answer_with_typed_errors() {
    let cfg = SchedulerConfig {
        lanes: 1,
        slice_steps: 4,
        start_paused: true,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::new(cfg, false).unwrap();
    // `ring: 0` explicitly opts out of the scheduler's default flight ring.
    let id = sched.submit(bsp_spec("dark", 8, r#", "observability": {"ring": 0}"#)).unwrap();
    // Lanes admit even while paused: wait for the engine to exist, then
    // the refusal must be Disabled (ring off), not NotStarted.
    let deadline = Instant::now() + IDLE;
    loop {
        match sched.dump(id) {
            Err(DumpError::NotStarted) => {
                assert!(Instant::now() < deadline, "job was never admitted");
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(DumpError::Disabled) => break,
            other => panic!("expected Disabled, got {other:?}"),
        }
    }
    assert!(matches!(sched.dump(JobId(99)), Err(DumpError::UnknownJob)));
    sched.start();
    assert!(sched.wait_idle(IDLE));
}
