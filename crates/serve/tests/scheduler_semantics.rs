//! Scheduler-semantics contract tests: deterministic fair-share,
//! backpressure, cancellation releasing lanes, and daemon-restart resume
//! producing bitwise-identical results.

use sc_serve::{JobId, JobState, Scheduler, SchedulerConfig, SubmitError};
use sc_spec::ScenarioSpec;
use std::path::PathBuf;
use std::time::Duration;

const IDLE: Duration = Duration::from_secs(120);

/// A small, fast LJ scenario (~500 atoms serial).
fn lj_spec(name: &str, steps: u64, extra: &str) -> ScenarioSpec {
    let doc = format!(
        r#"{{
            "schema": "sc-scenario/1",
            "name": "{name}",
            "system": {{"kind": "lj", "cells": 5, "temp": 1.0, "seed": 42}},
            "potential": {{"kind": "lj", "cutoff": 2.5}},
            "method": "sc",
            "executor": {{"kind": "serial"}},
            "dt": 0.002,
            "steps": {steps}{extra}
        }}"#
    );
    ScenarioSpec::from_json_str(&doc).unwrap()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sc-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fair_share_round_robin_is_deterministic() {
    let cfg = SchedulerConfig {
        lanes: 1,
        slice_steps: 4,
        start_paused: true,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::new(cfg, false).unwrap();
    for i in 0..3 {
        let id = sched.submit(lj_spec(&format!("fair-{i}"), 12, "")).unwrap();
        assert_eq!(id, JobId(i));
    }
    sched.start();
    assert!(sched.wait_idle(IDLE), "jobs did not finish");
    // Strict round-robin: with equal jobs on one lane, slices interleave
    // 0,1,2,0,1,2,0,1,2 and each slice advances exactly `slice_steps`.
    let expected: Vec<(JobId, u64)> =
        (1..=3).flat_map(|round| (0..3).map(move |j| (JobId(j), round * 4))).collect();
    assert_eq!(sched.trace(), expected);
    for rec in sched.list() {
        assert_eq!(rec.state, JobState::Done, "{rec:?}");
        assert_eq!(rec.steps_done, 12);
    }
}

#[test]
fn fair_share_holds_under_a_seeded_fault_storm() {
    // Two BSP jobs with seeded fault plans, sharing one lane with a clean
    // serial job. The storm is deterministic, recovery is supervised, and
    // every tenant must still finish.
    let storm = r#"{
        "schema": "sc-scenario/1",
        "name": "storm",
        "system": {"kind": "lj", "cells": 7, "temp": 1.0, "seed": 42},
        "potential": {"kind": "lj", "cutoff": 2.5},
        "method": "sc",
        "executor": {"kind": "bsp", "grid": [2, 1, 1]},
        "dt": 0.002,
        "steps": 8,
        "fault_plan": {"seed": 7, "count": 2, "max_crashes": 0},
        "checkpoint": {"every": 2}
    }"#;
    let cfg = SchedulerConfig { lanes: 1, slice_steps: 2, ..SchedulerConfig::default() };
    let sched = Scheduler::new(cfg, false).unwrap();
    let storm_id = sched.submit(ScenarioSpec::from_json_str(storm).unwrap()).unwrap();
    let clean_id = sched.submit(lj_spec("clean", 8, "")).unwrap();
    assert!(sched.wait_idle(IDLE), "storm jobs did not finish: {:?}", sched.list());
    for id in [storm_id, clean_id] {
        let rec = sched.status(id).unwrap();
        assert_eq!(rec.state, JobState::Done, "{rec:?}");
        assert_eq!(rec.steps_done, 8);
        assert!(sched.results(id).is_some());
    }
}

#[test]
fn backpressure_rejects_above_capacity_with_a_typed_error() {
    let cfg = SchedulerConfig {
        lanes: 1,
        queue_capacity: 2,
        start_paused: true, // nothing completes, so the queue stays full
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::new(cfg, false).unwrap();
    sched.submit(lj_spec("a", 4, "")).unwrap();
    sched.submit(lj_spec("b", 4, "")).unwrap();
    match sched.submit(lj_spec("c", 4, "")) {
        Err(SubmitError::QueueFull { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // Rejected submissions leave no trace and burn no ids.
    assert_eq!(sched.list().len(), 2);
    sched.start();
    assert!(sched.wait_idle(IDLE));
    // Capacity freed: the same spec is admitted now.
    sched.submit(lj_spec("c", 4, "")).unwrap();
    assert!(sched.wait_idle(IDLE));
}

#[test]
fn unservable_and_invalid_specs_are_rejected_at_submit() {
    let sched = Scheduler::new(SchedulerConfig::default(), false).unwrap();
    let threaded = r#"{
        "schema": "sc-scenario/1",
        "name": "t",
        "system": {"kind": "lj", "cells": 7, "temp": 1.0, "seed": 42},
        "potential": {"kind": "lj", "cutoff": 2.5},
        "method": "sc",
        "executor": {"kind": "threaded", "grid": [2, 1, 1]},
        "dt": 0.002,
        "steps": 4
    }"#;
    match sched.submit(ScenarioSpec::from_json_str(threaded).unwrap()) {
        Err(SubmitError::Unservable(why)) => assert!(why.contains("threaded"), "{why}"),
        other => panic!("expected Unservable, got {other:?}"),
    }
    let mut invalid = lj_spec("x", 4, "");
    invalid.dt = -1.0;
    match sched.submit(invalid) {
        Err(SubmitError::Spec(e)) => assert!(e.to_string().contains("dt"), "{e}"),
        other => panic!("expected Spec error, got {other:?}"),
    }
    assert_eq!(sched.list().len(), 0);
}

#[test]
fn cancel_releases_the_lane_for_queued_work() {
    let cfg = SchedulerConfig {
        lanes: 1,
        queue_capacity: 2,
        slice_steps: 1,
        start_paused: true,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::new(cfg, false).unwrap();
    let long = sched.submit(lj_spec("long", 100_000, "")).unwrap();
    let short = sched.submit(lj_spec("short", 2, "")).unwrap();
    assert!(sched.cancel(long), "live job must be cancellable");
    sched.start();
    // The cancelled job retires at its first slice boundary; the short job
    // then owns the lane and finishes. If cancel failed to release the
    // lane, the 100k-step job would hold it far past the timeout.
    assert!(sched.wait_idle(IDLE), "lane never freed: {:?}", sched.list());
    assert_eq!(sched.status(long).unwrap().state, JobState::Cancelled);
    assert_eq!(sched.status(short).unwrap().state, JobState::Done);
    // Cancelling a terminal job reports false.
    assert!(!sched.cancel(long));
    assert!(!sched.cancel(short));
    assert!(!sched.cancel(JobId(99)));
    // A cancelled job has no results.
    assert!(sched.results(long).is_none());
}

#[test]
fn restart_resume_matches_an_uninterrupted_run_bitwise() {
    let spec_extra = r#", "checkpoint": {"every": 4}"#;
    // Reference: one scheduler runs the job start-to-finish.
    let dir_a = tmp_dir("uninterrupted");
    let cfg_a = SchedulerConfig {
        lanes: 1,
        slice_steps: 4,
        state_dir: Some(dir_a.clone()),
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::new(cfg_a, false).unwrap();
    let id = sched.submit(lj_spec("resume-me", 16, spec_extra)).unwrap();
    assert!(sched.wait_idle(IDLE));
    assert_eq!(sched.status(id).unwrap().state, JobState::Done);
    sched.shutdown();
    let reference =
        std::fs::read(dir_a.join("jobs/job-0/results.json")).expect("reference results");

    // Interrupted: same spec, but the scheduler shuts down mid-run (jobs
    // park with a labelled checkpoint) and a fresh scheduler resumes.
    let dir_b = tmp_dir("interrupted");
    let cfg_b = SchedulerConfig {
        lanes: 1,
        slice_steps: 4,
        state_dir: Some(dir_b.clone()),
        start_paused: true,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::new(cfg_b.clone(), false).unwrap();
    let id = sched.submit(lj_spec("resume-me", 16, spec_extra)).unwrap();
    sched.start();
    // Let it make partial progress, then stop the daemon.
    let deadline = std::time::Instant::now() + IDLE;
    loop {
        let rec = sched.status(id).unwrap();
        if rec.steps_done >= 4 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "no progress: {rec:?}");
        std::thread::yield_now();
    }
    sched.shutdown();
    let parked = sched_record(&dir_b);
    assert!(!parked.1.is_terminal(), "job must park non-terminal, got {parked:?}");

    let resumed = Scheduler::new(SchedulerConfig { start_paused: false, ..cfg_b }, true).unwrap();
    let rec = resumed.status(id).expect("resumed table entry");
    assert_eq!(rec.spec_name, "resume-me");
    assert!(resumed.wait_idle(IDLE), "resumed job did not finish: {:?}", resumed.list());
    assert_eq!(resumed.status(id).unwrap().state, JobState::Done);
    let resumed_bytes =
        std::fs::read(dir_b.join("jobs/job-0/results.json")).expect("resumed results");
    assert_eq!(
        reference, resumed_bytes,
        "resumed observables must be byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Reads the parked job's manifest (id, state) from a state dir.
fn sched_record(dir: &std::path::Path) -> (String, JobState) {
    let text = std::fs::read_to_string(dir.join("jobs/job-0/manifest.json")).unwrap();
    let doc = sc_obs::json::Json::parse(&text).unwrap();
    let rec = sc_serve::JobRecord::from_json(&doc).unwrap();
    (rec.id.to_string(), rec.state)
}

#[test]
fn terminal_jobs_and_results_survive_resume() {
    let dir = tmp_dir("terminal-resume");
    let cfg =
        SchedulerConfig { lanes: 1, state_dir: Some(dir.clone()), ..SchedulerConfig::default() };
    let sched = Scheduler::new(cfg.clone(), false).unwrap();
    let done = sched.submit(lj_spec("done", 4, "")).unwrap();
    let cancelled = sched.submit(lj_spec("cancelled", 100_000, "")).unwrap();
    sched.cancel(cancelled);
    assert!(sched.wait_idle(IDLE));
    let results = sched.results(done).unwrap().to_string();
    sched.shutdown();

    let resumed = Scheduler::new(cfg, true).unwrap();
    assert!(resumed.wait_idle(IDLE));
    assert_eq!(resumed.status(done).unwrap().state, JobState::Done);
    assert_eq!(resumed.status(cancelled).unwrap().state, JobState::Cancelled);
    assert_eq!(resumed.results(done).unwrap().to_string(), results);
    // Ids keep counting up from the persisted table.
    let next = resumed.submit(lj_spec("next", 2, "")).unwrap();
    assert_eq!(next, JobId(2));
    assert!(resumed.wait_idle(IDLE));
    let _ = std::fs::remove_dir_all(&dir);
}
