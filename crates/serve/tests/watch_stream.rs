//! Watch-stream contract tests: backpressure on a slow subscriber drops
//! the oldest snapshots (counted, lane never stalls) while the watched
//! run's step cadence and final observables stay bitwise identical to an
//! unwatched run of the same spec.

use sc_serve::{Scheduler, SchedulerConfig, WatchError, WatchEvent};
use sc_spec::ScenarioSpec;
use std::time::Duration;

const IDLE: Duration = Duration::from_secs(120);

/// A small, fast LJ scenario (~500 atoms serial).
fn lj_spec(name: &str, steps: u64) -> ScenarioSpec {
    let doc = format!(
        r#"{{
            "schema": "sc-scenario/1",
            "name": "{name}",
            "system": {{"kind": "lj", "cells": 5, "temp": 1.0, "seed": 42}},
            "potential": {{"kind": "lj", "cutoff": 2.5}},
            "method": "sc",
            "executor": {{"kind": "serial"}},
            "dt": 0.002,
            "steps": {steps}
        }}"#
    );
    ScenarioSpec::from_json_str(&doc).unwrap()
}

fn tiny_queue_cfg() -> SchedulerConfig {
    SchedulerConfig {
        lanes: 1,
        slice_steps: 4,
        // Deliberately tiny: 40 steps at 4-step slices produce 10 per-slice
        // snapshots plus the final one — a subscriber that never drains
        // must overflow and lose its oldest.
        watch_queue: 2,
        start_paused: true,
        ..SchedulerConfig::default()
    }
}

#[test]
fn slow_subscriber_drops_oldest_while_the_run_stays_bitwise_identical() {
    // Baseline: the same spec, unwatched.
    let sched = Scheduler::new(tiny_queue_cfg(), false).unwrap();
    let id = sched.submit(lj_spec("watch-bp", 40)).unwrap();
    sched.start();
    assert!(sched.wait_idle(IDLE));
    let baseline_results = sched.results(id).unwrap().to_string();
    let baseline_trace = sched.trace();
    sched.shutdown();

    // Watched run: subscribe at per-slice cadence before the lanes start,
    // then deliberately consume nothing until the job is done.
    let sched = Scheduler::new(tiny_queue_cfg(), false).unwrap();
    let id = sched.submit(lj_spec("watch-bp", 40)).unwrap();
    let handle = sched.watch(id, Some(0)).unwrap();
    sched.start();
    assert!(sched.wait_idle(IDLE));

    // The stalled subscriber lost snapshots — counted, not blocking.
    assert!(handle.dropped() >= 1, "cap-2 queue must overflow, got {} drops", handle.dropped());

    // Drain what survived: strictly increasing seq (gaps mark the drops),
    // then End at the terminal state carrying the cumulative drop count.
    let mut seqs = Vec::new();
    let (end_state, end_dropped) = loop {
        match handle.recv(Duration::from_secs(5)) {
            WatchEvent::Snapshot { seq, doc, .. } => {
                assert!(doc.get("step").is_some(), "snapshot is a telemetry document");
                seqs.push(seq);
            }
            WatchEvent::End { state, dropped } => break (state, dropped),
            WatchEvent::TimedOut => panic!("stream must end after the job completes"),
        }
    };
    assert_eq!(end_state, "done");
    assert!(end_dropped >= 1);
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "snapshots out of order: {seqs:?}");
    assert!(
        *seqs.last().unwrap() >= seqs.len() as u64,
        "seq gaps must witness the {end_dropped} drops: {seqs:?}"
    );

    // Watching perturbed nothing: identical slice cadence, byte-identical
    // observables.
    assert_eq!(sched.trace(), baseline_trace, "watching changed the slice cadence");
    assert_eq!(sched.results(id).unwrap().to_string(), baseline_results);
}

#[test]
fn watch_cadence_skips_off_cycle_slices_and_terminal_jobs_are_refused() {
    let cfg = SchedulerConfig {
        lanes: 1,
        slice_steps: 4,
        watch_queue: 64,
        start_paused: true,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::new(cfg, false).unwrap();
    let id = sched.submit(lj_spec("watch-cadence", 40)).unwrap();
    // Cadence 16 over 40 steps: crossings at 16 and 32, plus the final
    // completed-state snapshot every subscriber receives.
    let handle = sched.watch(id, Some(16)).unwrap();
    assert_eq!(handle.every(), 16);
    sched.start();
    assert!(sched.wait_idle(IDLE));
    let mut steps = Vec::new();
    loop {
        match handle.recv(Duration::from_secs(5)) {
            WatchEvent::Snapshot { doc, .. } => {
                steps.push(doc.get("step").and_then(|v| v.as_f64()).unwrap() as u64);
            }
            WatchEvent::End { state, dropped } => {
                assert_eq!(state, "done");
                assert_eq!(dropped, 0, "a 64-deep queue must not overflow 3 snapshots");
                break;
            }
            WatchEvent::TimedOut => panic!("stream must end after the job completes"),
        }
    }
    assert_eq!(steps, vec![16, 32, 40]);

    // The job is terminal now: a new subscription is refused, typed.
    match sched.watch(id, None) {
        Err(WatchError::Terminal(state)) => assert_eq!(state.as_str(), "done"),
        other => panic!("expected Terminal refusal, got {other:?}"),
    }
    match sched.watch(sc_serve::JobId(99), None) {
        Err(WatchError::UnknownJob) => {}
        other => panic!("expected UnknownJob, got {other:?}"),
    }
}
