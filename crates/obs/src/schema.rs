//! A minimal JSON-Schema-style validator for the CI metrics check.
//!
//! Supports the subset the checked-in metrics schema uses: `type`
//! (`object`, `array`, `string`, `number`, `integer`, `boolean`, `null`),
//! `required`, `properties`, and `items`. Unknown keywords are ignored, as
//! JSON Schema prescribes. No external dependencies.

use crate::json::Json;

/// Validates `value` against `schema`, returning the JSON path of the
/// first violation.
pub fn validate(value: &Json, schema: &Json) -> Result<(), String> {
    validate_at(value, schema, "$")
}

fn validate_at(value: &Json, schema: &Json, path: &str) -> Result<(), String> {
    let Some(fields) = schema.as_object() else {
        // A non-object schema constrains nothing.
        return Ok(());
    };
    for (keyword, arg) in fields {
        match keyword.as_str() {
            "type" => check_type(value, arg, path)?,
            "required" => check_required(value, arg, path)?,
            "properties" => {
                if let (Some(props), Some(obj)) = (arg.as_object(), value.as_object()) {
                    for (name, sub) in props {
                        if let Some((_, v)) = obj.iter().find(|(k, _)| k == name) {
                            validate_at(v, sub, &format!("{path}.{name}"))?;
                        }
                    }
                }
            }
            "items" => {
                if let Some(items) = value.as_array() {
                    for (i, item) in items.iter().enumerate() {
                        validate_at(item, arg, &format!("{path}[{i}]"))?;
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn check_type(value: &Json, expected: &Json, path: &str) -> Result<(), String> {
    let Some(want) = expected.as_str() else {
        return Err(format!("{path}: schema 'type' must be a string"));
    };
    let ok = match want {
        "object" => matches!(value, Json::Obj(_)),
        "array" => matches!(value, Json::Arr(_)),
        "string" => matches!(value, Json::Str(_)),
        "number" => matches!(value, Json::Num(_)),
        "integer" => matches!(value, Json::Num(n) if n.fract() == 0.0),
        "boolean" => matches!(value, Json::Bool(_)),
        "null" => matches!(value, Json::Null),
        other => return Err(format!("{path}: unsupported schema type '{other}'")),
    };
    if ok {
        Ok(())
    } else {
        Err(format!("{path}: expected type '{want}', got {}", kind_name(value)))
    }
}

fn check_required(value: &Json, required: &Json, path: &str) -> Result<(), String> {
    let (Some(names), Some(obj)) = (required.as_array(), value.as_object()) else {
        return Ok(());
    };
    for name in names {
        if let Some(name) = name.as_str() {
            if !obj.iter().any(|(k, _)| k == name) {
                return Err(format!("{path}: missing required field '{name}'"));
            }
        }
    }
    Ok(())
}

fn kind_name(value: &Json) -> &'static str {
    match value {
        Json::Null => "null",
        Json::Bool(_) => "boolean",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Json {
        Json::parse(
            r#"{
                "type": "object",
                "required": ["step", "phases"],
                "properties": {
                    "step": {"type": "integer"},
                    "phases": {
                        "type": "object",
                        "required": ["bin_s"],
                        "properties": {"bin_s": {"type": "number"}}
                    },
                    "per_rank": {
                        "type": "array",
                        "items": {"type": "object", "required": ["rank"]}
                    }
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn accepts_conforming_documents() {
        let doc = Json::parse(
            r#"{"step": 10, "phases": {"bin_s": 0.25, "extra": true},
                "per_rank": [{"rank": 0}, {"rank": 1}], "unknown": null}"#,
        )
        .unwrap();
        validate(&doc, &schema()).unwrap();
    }

    #[test]
    fn reports_the_failing_path() {
        let doc = Json::parse(r#"{"step": 1.5, "phases": {"bin_s": 0}}"#).unwrap();
        let err = validate(&doc, &schema()).unwrap_err();
        assert!(err.contains("$.step"), "{err}");

        let doc = Json::parse(r#"{"step": 1, "phases": {}}"#).unwrap();
        let err = validate(&doc, &schema()).unwrap_err();
        assert!(err.contains("bin_s"), "{err}");

        let doc = Json::parse(r#"{"step": 1, "phases": {"bin_s": 0}, "per_rank": [{}]}"#).unwrap();
        let err = validate(&doc, &schema()).unwrap_err();
        assert!(err.contains("per_rank[0]"), "{err}");

        let doc = Json::parse(r#"{"phases": {"bin_s": 0}}"#).unwrap();
        assert!(validate(&doc, &schema()).is_err());
    }
}
