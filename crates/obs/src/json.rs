//! A minimal, dependency-free JSON value type with a parser and a compact
//! writer.
//!
//! The workspace's vendored `serde` is a marker-trait shim with no codegen,
//! so the exporters and the CI schema check build JSON through this module
//! instead. It covers the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null); numbers are `f64` throughout.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for a number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Looks up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value; `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object fields, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document. The entire input must be consumed (trailing
    /// whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising stand-in.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{text}'"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: combine if a low surrogate follows.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 char verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid utf-8 in \\u escape".to_string())?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape '{text}'"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let src = r#"{"a": [1, 2.5, -3e2], "b": {"nested": true, "s": "hi\nthere"}, "n": null}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("hi\nthere"));
        assert_eq!(v.get("n"), Some(&Json::Null));
        // Write → parse → same value.
        let rewritten = v.to_string();
        assert_eq!(Json::parse(&rewritten).unwrap(), v);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::str("quote\" slash\\ tab\t nl\n ctrl\u{1}");
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed, v);
        // \u escapes parse, including a surrogate pair.
        let v = Json::parse(r#""A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"open"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
