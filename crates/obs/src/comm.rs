//! Communication accounting counters shared by every executor view.

use crate::phase::PhaseBreakdown;
use std::collections::BTreeSet;

/// Communication accounting for one rank (or, after `merge`, an aggregate
/// over ranks) — the empirical counterpart of the paper's communication
/// model `T_comm = c_bw·V_import + c_lat·n_msg` (Eq. 31).
///
/// This is plain data: the distributed executors fill one per rank and feed
/// per-step deltas into a [`crate::Registry`] when metrics are enabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommCounters {
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Ghost atoms imported this step (the import-volume observable).
    pub ghosts_imported: u64,
    /// Atoms migrated away this step.
    pub atoms_migrated: u64,
    /// Delivery retries performed after a validation failure or loss
    /// (cumulative; exposed by the `--measured` bench modes as the
    /// fault-overhead observable).
    pub retries: u64,
    /// Validated-exchange failures detected (checksum/epoch mismatches and
    /// lost payloads), whether or not a retry recovered them.
    pub faults_detected: u64,
    /// Distinct ranks this rank sent to.
    pub partners: BTreeSet<usize>,
    /// Cumulative phase breakdown of this rank's work (seconds since
    /// construction; `merge` sums it across ranks, so a merged total is
    /// summed per-rank CPU time, not wall time). Which slots are filled
    /// depends on the view: rank-local force computation fills
    /// bin/enumerate/eval/reduce, per-rank communicating executors also
    /// fill exchange, and wall-clock views live in a separate breakdown.
    pub phases: PhaseBreakdown,
}

impl CommCounters {
    /// Records a sent message.
    pub fn record_send(&mut self, to: usize, bytes: u64) {
        self.messages += 1;
        self.bytes += bytes;
        self.partners.insert(to);
    }

    /// Merges another rank's counters (for global totals).
    pub fn merge(&mut self, o: &CommCounters) {
        self.messages += o.messages;
        self.bytes += o.bytes;
        self.ghosts_imported += o.ghosts_imported;
        self.atoms_migrated += o.atoms_migrated;
        self.retries += o.retries;
        self.faults_detected += o.faults_detected;
        self.partners.extend(o.partners.iter().copied());
        self.phases.accumulate(&o.phases);
    }

    /// Clears the per-step counters (partners persist across steps).
    pub fn reset_step(&mut self) {
        self.ghosts_imported = 0;
        self.atoms_migrated = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    #[test]
    fn send_merge_and_reset() {
        let mut s = CommCounters::default();
        s.record_send(3, 100);
        s.record_send(3, 50);
        s.record_send(5, 10);
        s.ghosts_imported = 7;
        s.phases.add(Phase::Exchange, 0.5);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 160);
        assert_eq!(s.partners.len(), 2);
        let mut t = CommCounters::default();
        t.record_send(7, 1);
        t.merge(&s);
        assert_eq!(t.messages, 4);
        assert_eq!(t.partners.len(), 3);
        assert_eq!(t.phases.exchange_s(), 0.5);
        t.reset_step();
        assert_eq!(t.ghosts_imported, 0);
        assert_eq!(t.messages, 4, "cumulative counters survive reset_step");
    }
}
