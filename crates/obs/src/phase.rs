//! The phase taxonomy of an MD step and the [`PhaseBreakdown`] value type.
//!
//! The paper's cost model splits a step into compute terms (binning,
//! enumeration, per-tuple evaluation — Eq. 29) and communication terms
//! (atom caching/import, migration, force reduction — Eq. 31/33). Every
//! timing view in this repository, whether a per-lane CPU-time profile or a
//! per-step wall-clock profile, is expressed over the same fixed set of
//! [`Phase`] slots so that views can be merged, exported, and compared.

/// One slot in the per-step phase taxonomy.
///
/// The mapping onto the paper's cost terms:
///
/// | phase       | paper term                                        |
/// |-------------|---------------------------------------------------|
/// | `Bin`       | cell-lattice (re)build — part of Eq. 29 setup     |
/// | `Exchange`  | atom caching / ghost import volume (Eq. 31)       |
/// | `Enumerate` | n-tuple search over SC/FS patterns (Eq. 29)       |
/// | `Eval`      | per-tuple force/energy evaluation (Eq. 29)        |
/// | `Reduce`    | partial-force reduction across lanes/ranks (Eq. 33)|
/// | `Migrate`   | atom migration between rank sub-boxes             |
/// | `Integrate` | velocity-Verlet update (not in the comm model)    |
/// | `Compute`   | aggregate force-compute wall time, for views that |
/// |             | cannot split bin/enumerate/eval (e.g. BSP wall)   |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Cell-lattice (re)build before enumeration.
    Bin,
    /// Ghost/atom exchange with neighbour ranks (import volume).
    Exchange,
    /// Dynamic n-tuple enumeration over the computation pattern.
    Enumerate,
    /// Per-tuple potential evaluation.
    Eval,
    /// Reduction of partial forces (lane merge or rank-to-rank return).
    Reduce,
    /// Owner migration of atoms that left their rank sub-box.
    Migrate,
    /// Time integration (velocity Verlet halves, thermostat, barostat).
    Integrate,
    /// Aggregate compute wall time where bin/enumerate/eval are not split.
    Compute,
}

impl Phase {
    /// Number of phases in the taxonomy.
    pub const COUNT: usize = 8;

    /// Every phase, in canonical (export) order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Bin,
        Phase::Exchange,
        Phase::Enumerate,
        Phase::Eval,
        Phase::Reduce,
        Phase::Migrate,
        Phase::Integrate,
        Phase::Compute,
    ];

    /// Stable dense index of this phase (0-based, matches [`Phase::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The phase with the given dense index, inverse of [`Phase::index`].
    pub fn from_index(index: usize) -> Option<Phase> {
        Phase::ALL.get(index).copied()
    }

    /// Lower-case stable name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Bin => "bin",
            Phase::Exchange => "exchange",
            Phase::Enumerate => "enumerate",
            Phase::Eval => "eval",
            Phase::Reduce => "reduce",
            Phase::Migrate => "migrate",
            Phase::Integrate => "integrate",
            Phase::Compute => "compute",
        }
    }
}

/// Seconds spent in each [`Phase`] — the single timing value type shared by
/// the serial engine (per-computation CPU profile), the distributed
/// executors (per-step wall profile and per-rank profiles), and the metrics
/// registry snapshot.
///
/// Replaces the former `StepPhases` (sc-md) and `PhaseTimings`
/// (sc-parallel), which carried overlapping subsets of the same taxonomy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    secs: [f64; Phase::COUNT],
}

impl PhaseBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seconds recorded for `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.secs[phase.index()]
    }

    /// Add `secs` seconds to `phase`.
    pub fn add(&mut self, phase: Phase, secs: f64) {
        self.secs[phase.index()] += secs;
    }

    /// Overwrite the seconds recorded for `phase`.
    pub fn set(&mut self, phase: Phase, secs: f64) {
        self.secs[phase.index()] = secs;
    }

    /// Element-wise accumulate another breakdown into this one.
    pub fn accumulate(&mut self, other: &PhaseBreakdown) {
        for p in Phase::ALL {
            self.secs[p.index()] += other.secs[p.index()];
        }
    }

    /// Sum over every phase slot.
    pub fn total_s(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// Iterate `(phase, seconds)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, f64)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.get(p)))
    }

    /// Cell-binning seconds.
    pub fn bin_s(&self) -> f64 {
        self.get(Phase::Bin)
    }

    /// Ghost-exchange seconds.
    pub fn exchange_s(&self) -> f64 {
        self.get(Phase::Exchange)
    }

    /// Tuple-enumeration seconds.
    pub fn enumerate_s(&self) -> f64 {
        self.get(Phase::Enumerate)
    }

    /// Tuple-evaluation seconds.
    pub fn eval_s(&self) -> f64 {
        self.get(Phase::Eval)
    }

    /// Force-reduction seconds.
    pub fn reduce_s(&self) -> f64 {
        self.get(Phase::Reduce)
    }

    /// Atom-migration seconds.
    pub fn migrate_s(&self) -> f64 {
        self.get(Phase::Migrate)
    }

    /// Integration seconds.
    pub fn integrate_s(&self) -> f64 {
        self.get(Phase::Integrate)
    }

    /// Aggregate compute wall seconds (the [`Phase::Compute`] slot only).
    pub fn compute_s(&self) -> f64 {
        self.get(Phase::Compute)
    }

    /// Total force-compute seconds: the aggregate `Compute` slot plus the
    /// split bin/enumerate/eval slots, whichever a given view filled.
    pub fn compute_total_s(&self) -> f64 {
        self.compute_s() + self.bin_s() + self.enumerate_s() + self.eval_s()
    }

    /// Fraction of the total spent in communication phases
    /// (exchange + migrate + reduce) — the paper's T_comm / T_total.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total_s();
        if total <= 0.0 {
            return 0.0;
        }
        (self.exchange_s() + self.migrate_s() + self.reduce_s()) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT);
    }

    #[test]
    fn accumulate_and_totals() {
        let mut a = PhaseBreakdown::new();
        a.add(Phase::Bin, 0.5);
        a.add(Phase::Eval, 1.0);
        let mut b = PhaseBreakdown::new();
        b.add(Phase::Bin, 0.25);
        b.add(Phase::Reduce, 0.25);
        a.accumulate(&b);
        assert_eq!(a.bin_s(), 0.75);
        assert_eq!(a.eval_s(), 1.0);
        assert_eq!(a.reduce_s(), 0.25);
        assert!((a.total_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comm_fraction_matches_paper_split() {
        let mut p = PhaseBreakdown::new();
        p.add(Phase::Compute, 3.0);
        p.add(Phase::Exchange, 0.5);
        p.add(Phase::Migrate, 0.25);
        p.add(Phase::Reduce, 0.25);
        assert!((p.comm_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(PhaseBreakdown::new().comm_fraction(), 0.0);
        assert_eq!(p.compute_total_s(), 3.0);
    }
}
