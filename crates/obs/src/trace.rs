//! Event-level tracing: bounded, lock-free per-thread ring buffers of
//! [`TraceEvent`]s, a cross-thread/cross-rank merge, and a Chrome Trace
//! Format exporter (`chrome://tracing` / Perfetto loadable).
//!
//! The metrics [`crate::Registry`] answers *how much* time each phase
//! costs; this module answers *when* and *on which rank*. The paper's
//! claims are about the distribution of work and waiting across ranks over
//! time (Eq. 29/30 cost decomposition, the compute/comm crossover, the
//! Fig. 9 strong-scaling efficiencies), so the taxonomy traced here is the
//! same fixed [`Phase`] set the registry aggregates, plus communication
//! events (send/recv with epoch + channel + bytes) and recovery markers
//! (checkpoint / rollback / fault).
//!
//! Design points, mirroring the registry:
//!
//! - **The hot path is lock-free and bounded.** A [`TraceSink`] writes into
//!   its own fixed-capacity ring of atomic words: a write claims a slot
//!   with one `fetch_add` and stores eight words — no locks, no heap, no
//!   waiting. When the ring wraps, the oldest events are overwritten (and
//!   counted as dropped); emitting never blocks.
//! - **Disabled mode is free.** [`Tracer::disabled`] hands out inert sinks
//!   that perform no allocation and never read the clock, so engines can
//!   instrument unconditionally.
//! - **Merging is offline.** [`Tracer::events`] snapshots every registered
//!   ring and sorts by `(step, rank, timestamp)` — the merge key that makes
//!   per-rank timelines comparable even though each thread's ring fills at
//!   its own rate. Slots that are mid-overwrite at snapshot time are
//!   detected by a per-slot sequence word and skipped, never torn.

use crate::json::Json;
use crate::phase::Phase;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Words of ring storage per event (see the encoding in `encode`).
const WORDS: usize = 8;

/// Default ring capacity per sink, in events.
pub const DEFAULT_CAPACITY: usize = 16_384;

/// A communication channel class, matching the distributed executors'
/// message taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommChannel {
    /// Owner migration of atoms between rank sub-boxes.
    Migrate,
    /// Halo/ghost-atom export (the import-volume observable, Eq. 31).
    Ghosts,
    /// Reverse partial-force reduction.
    Forces,
}

impl CommChannel {
    /// Stable lower-case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            CommChannel::Migrate => "migrate",
            CommChannel::Ghosts => "ghosts",
            CommChannel::Forces => "forces",
        }
    }

    fn code(self) -> u64 {
        match self {
            CommChannel::Migrate => 0,
            CommChannel::Ghosts => 1,
            CommChannel::Forces => 2,
        }
    }

    fn from_code(code: u64) -> Option<CommChannel> {
        match code {
            0 => Some(CommChannel::Migrate),
            1 => Some(CommChannel::Ghosts),
            2 => Some(CommChannel::Forces),
            _ => None,
        }
    }
}

/// What one trace event records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A phase interval (`dur_ns` spans it).
    Phase(Phase),
    /// A message sent to `peer` (instantaneous).
    Send {
        /// Channel class of the message (a batched frame reports the
        /// channel of its first section).
        channel: CommChannel,
        /// Destination rank.
        peer: u32,
        /// Payload wire bytes.
        bytes: u64,
        /// Per-channel sections packed in this wire unit (1 for a bare
        /// message, ≥ 1 for an aggregated frame).
        sections: u16,
        /// Validated-exchange epoch the message was stamped with.
        epoch: u64,
    },
    /// A message received from `peer` (instantaneous).
    Recv {
        /// Channel class of the message (a batched frame reports the
        /// channel of its first section).
        channel: CommChannel,
        /// Source rank.
        peer: u32,
        /// Payload wire bytes.
        bytes: u64,
        /// Per-channel sections packed in this wire unit (1 for a bare
        /// message, ≥ 1 for an aggregated frame).
        sections: u16,
        /// Validated-exchange epoch the message was stamped with.
        epoch: u64,
    },
    /// A checkpoint was saved.
    Checkpoint,
    /// A rollback-and-replay recovery fired.
    Rollback,
    /// A fault was detected (transport or invariant).
    Fault,
    /// A peer rank's health state changed (deadline-watchdog transition:
    /// 0 = healthy, 1 = suspect, 2 = dead).
    Health {
        /// The rank whose health changed.
        peer: u32,
        /// The new state code (0 healthy / 1 suspect / 2 dead).
        state: u8,
    },
    /// The runtime re-decomposed the rank grid: either onto a surviving
    /// rank set after a rank was declared dead (`lost`), or as an adaptive
    /// load-balance refit with every rank retained.
    Redecompose {
        /// `lost`: the rank excluded from the new decomposition.
        /// Otherwise: the rank count of the refit grid.
        rank: u32,
        /// Whether a rank was lost (crash recovery) as opposed to an
        /// adaptive rebalance.
        lost: bool,
    },
}

/// One timestamped event, as decoded from a ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the owning [`Tracer`]'s epoch.
    pub t_ns: u64,
    /// Interval length in nanoseconds (0 for instantaneous events).
    pub dur_ns: u64,
    /// Simulation step the event belongs to.
    pub step: u64,
    /// Rank (process lane in the distributed executors; 0 serially).
    pub rank: u32,
    /// Thread/lane id within the rank.
    pub lane: u32,
    /// What happened.
    pub kind: EventKind,
}

const TAG_PHASE: u64 = 0;
const TAG_SEND: u64 = 1;
const TAG_RECV: u64 = 2;
const TAG_CHECKPOINT: u64 = 3;
const TAG_ROLLBACK: u64 = 4;
const TAG_FAULT: u64 = 5;
const TAG_HEALTH: u64 = 6;
const TAG_REDECOMP: u64 = 7;

/// Encodes an event into ring words `w1..w7` (`w0` is the sequence word,
/// written by the ring itself).
fn encode(ev: &TraceEvent) -> [u64; WORDS - 1] {
    // Word 4 layout: tag in bits 56..63, code in 48..55, the send/recv
    // section count in 32..47, peer in 0..31.
    let (tag, code, peer, bytes, epoch, sections) = match ev.kind {
        EventKind::Phase(p) => (TAG_PHASE, p.index() as u64, 0, 0, 0, 0),
        EventKind::Send { channel, peer, bytes, epoch, sections } => {
            (TAG_SEND, channel.code(), peer, bytes, epoch, sections)
        }
        EventKind::Recv { channel, peer, bytes, epoch, sections } => {
            (TAG_RECV, channel.code(), peer, bytes, epoch, sections)
        }
        EventKind::Checkpoint => (TAG_CHECKPOINT, 0, 0, 0, 0, 0),
        EventKind::Rollback => (TAG_ROLLBACK, 0, 0, 0, 0, 0),
        EventKind::Fault => (TAG_FAULT, 0, 0, 0, 0, 0),
        EventKind::Health { peer, state } => (TAG_HEALTH, state as u64, peer, 0, 0, 0),
        EventKind::Redecompose { rank, lost } => (TAG_REDECOMP, lost as u64, rank, 0, 0, 0),
    };
    [
        ev.t_ns,
        ev.dur_ns,
        ev.step,
        (ev.rank as u64) << 32 | ev.lane as u64,
        tag << 56 | code << 48 | (sections as u64) << 32 | peer as u64,
        bytes,
        epoch,
    ]
}

fn decode(words: &[u64; WORDS - 1]) -> Option<TraceEvent> {
    let tag = words[4] >> 56;
    let code = (words[4] >> 48) & 0xff;
    let sections = ((words[4] >> 32) & 0xffff) as u16;
    let peer = (words[4] & 0xffff_ffff) as u32;
    let kind = match tag {
        TAG_PHASE => EventKind::Phase(Phase::from_index(code as usize)?),
        TAG_SEND => EventKind::Send {
            channel: CommChannel::from_code(code)?,
            peer,
            bytes: words[5],
            sections,
            epoch: words[6],
        },
        TAG_RECV => EventKind::Recv {
            channel: CommChannel::from_code(code)?,
            peer,
            bytes: words[5],
            sections,
            epoch: words[6],
        },
        TAG_CHECKPOINT => EventKind::Checkpoint,
        TAG_ROLLBACK => EventKind::Rollback,
        TAG_FAULT => EventKind::Fault,
        TAG_HEALTH => {
            if code > 2 {
                return None;
            }
            EventKind::Health { peer, state: code as u8 }
        }
        TAG_REDECOMP => EventKind::Redecompose { rank: peer, lost: code != 0 },
        _ => return None,
    };
    Some(TraceEvent {
        t_ns: words[0],
        dur_ns: words[1],
        step: words[2],
        rank: (words[3] >> 32) as u32,
        lane: (words[3] & 0xffff_ffff) as u32,
        kind,
    })
}

/// One bounded ring of events. All slot storage is atomic words, so writers
/// never lock and concurrent snapshots are data-race-free; a per-slot
/// sequence word detects (and skips) slots caught mid-overwrite.
#[derive(Debug)]
struct RingCore {
    capacity: usize,
    /// `capacity * WORDS` atomic words; slot `i` occupies
    /// `words[i*WORDS .. (i+1)*WORDS]`, word 0 holding `seq + 1`.
    words: Box<[AtomicU64]>,
    /// Total events ever claimed (monotonic; `min(written, capacity)` are
    /// live, the rest were overwritten — dropped oldest-first).
    written: AtomicU64,
}

impl RingCore {
    fn new(capacity: usize) -> Self {
        let n = capacity.max(1) * WORDS;
        RingCore {
            capacity: capacity.max(1),
            words: (0..n).map(|_| AtomicU64::new(0)).collect(),
            written: AtomicU64::new(0),
        }
    }

    fn push(&self, ev: &TraceEvent) {
        let seq = self.written.fetch_add(1, Ordering::Relaxed);
        let base = (seq as usize % self.capacity) * WORDS;
        // Invalidate the slot first so a concurrent snapshot never pairs the
        // new sequence word with stale payload words.
        self.words[base].store(0, Ordering::Release);
        for (i, w) in encode(ev).iter().enumerate() {
            self.words[base + 1 + i].store(*w, Ordering::Relaxed);
        }
        self.words[base].store(seq + 1, Ordering::Release);
    }

    fn dropped(&self) -> u64 {
        self.written.load(Ordering::Relaxed).saturating_sub(self.capacity as u64)
    }

    /// Snapshot the live events, oldest first. Slots claimed but not yet
    /// fully written (or overwritten mid-read) fail the sequence check and
    /// are skipped.
    fn snapshot(&self, out: &mut Vec<TraceEvent>) {
        let written = self.written.load(Ordering::Acquire);
        let live = written.min(self.capacity as u64);
        for seq in (written - live)..written {
            let base = (seq as usize % self.capacity) * WORDS;
            if self.words[base].load(Ordering::Acquire) != seq + 1 {
                continue;
            }
            let mut payload = [0u64; WORDS - 1];
            for (i, w) in payload.iter_mut().enumerate() {
                *w = self.words[base + 1 + i].load(Ordering::Relaxed);
            }
            // Re-check the sequence word: if it moved, the slot was being
            // overwritten while we read it.
            if self.words[base].load(Ordering::Acquire) != seq + 1 {
                continue;
            }
            if let Some(ev) = decode(&payload) {
                out.push(ev);
            }
        }
    }
}

#[derive(Debug)]
struct TracerInner {
    epoch: Instant,
    capacity: usize,
    /// Every ring ever handed out; locked only at sink creation.
    rings: Mutex<Vec<Arc<RingCore>>>,
}

/// A shared, clonable handle to one trace collection (or to the inert
/// disabled tracer). Hand [`Tracer::sink`] to each thread/rank; collect
/// with [`Tracer::events`] once the producers are quiescent.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A live tracer whose sinks hold [`DEFAULT_CAPACITY`]-event rings.
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// A live tracer with `capacity` events of ring storage per sink.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                capacity,
                rings: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op tracer: hands out inert sinks, performs no allocation, and
    /// never reads the clock. This is the [`Default`].
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether this handle points at a live tracer.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the tracer's epoch (0 when disabled — the clock is
    /// not read).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Creates a new per-thread sink writing into its own ring, tagged with
    /// `(rank, lane)`. Allocates the ring once here; emitting through the
    /// sink never allocates.
    pub fn sink(&self, rank: u32, lane: u32) -> TraceSink {
        let Some(inner) = &self.inner else {
            return TraceSink::disabled();
        };
        let ring = Arc::new(RingCore::new(inner.capacity));
        inner.rings.lock().unwrap().push(ring.clone());
        TraceSink { core: Some((inner.clone(), ring)), rank, lane }
    }

    /// Total events dropped to ring wraparound across every sink.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.rings.lock().unwrap().iter().map(|r| r.dropped()).sum(),
            None => 0,
        }
    }

    /// Merges every sink's ring into one event list sorted by
    /// `(step, rank, t_ns, lane)` — the cross-thread/cross-rank timeline.
    /// Call when producers are quiescent (between steps or after a run);
    /// slots being overwritten concurrently are skipped, not torn.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for ring in inner.rings.lock().unwrap().iter() {
            ring.snapshot(&mut out);
        }
        out.sort_by_key(|e| (e.step, e.rank, e.t_ns, e.lane));
        out
    }
}

/// A per-thread event writer bound to one ring. Inert when obtained from a
/// disabled tracer: every emit is a branch on `None`, with no allocation
/// and no clock read.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    core: Option<(Arc<TracerInner>, Arc<RingCore>)>,
    rank: u32,
    lane: u32,
}

impl TraceSink {
    /// An inert sink (what a disabled tracer hands out).
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// Whether this sink writes into a live ring.
    pub fn enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The rank this sink is tagged with.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Nanoseconds since the owning tracer's epoch (0 when disabled — the
    /// clock is not read).
    pub fn now_ns(&self) -> u64 {
        match &self.core {
            Some((inner, _)) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Emits a fully-specified event (rank/lane are overridden with this
    /// sink's tags).
    pub fn emit(&self, mut ev: TraceEvent) {
        if let Some((_, ring)) = &self.core {
            ev.rank = self.rank;
            ev.lane = self.lane;
            ring.push(&ev);
        }
    }

    /// Emits a phase interval that started at `start_ns` (from
    /// [`TraceSink::now_ns`]) and lasted `dur_ns`.
    pub fn phase(&self, step: u64, phase: Phase, start_ns: u64, dur_ns: u64) {
        self.emit(TraceEvent {
            t_ns: start_ns,
            dur_ns,
            step,
            rank: 0,
            lane: 0,
            kind: EventKind::Phase(phase),
        });
    }

    /// Emits an instantaneous marker (checkpoint / rollback / fault / comm)
    /// stamped with the current time.
    pub fn instant(&self, step: u64, kind: EventKind) {
        if self.enabled() {
            self.emit(TraceEvent { t_ns: self.now_ns(), dur_ns: 0, step, rank: 0, lane: 0, kind });
        }
    }

    /// Emits a send event for a wire unit of `sections` per-channel
    /// sections (1 for a bare message).
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &self,
        step: u64,
        channel: CommChannel,
        peer: u32,
        bytes: u64,
        sections: u16,
        epoch: u64,
    ) {
        self.instant(step, EventKind::Send { channel, peer, bytes, sections, epoch });
    }

    /// Emits a receive event for a wire unit of `sections` per-channel
    /// sections (1 for a bare message).
    #[allow(clippy::too_many_arguments)]
    pub fn recv(
        &self,
        step: u64,
        channel: CommChannel,
        peer: u32,
        bytes: u64,
        sections: u16,
        epoch: u64,
    ) {
        self.instant(step, EventKind::Recv { channel, peer, bytes, sections, epoch });
    }
}

/// Renders a merged event list in Chrome Trace Format — an object with a
/// `traceEvents` array loadable by `chrome://tracing` and Perfetto. Phase
/// intervals become complete (`"X"`) events, everything else becomes
/// instant (`"i"`) events; ranks map to `pid`, lanes to `tid`, and
/// process-name metadata rows label each rank.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    let mut rows: Vec<Json> = Vec::with_capacity(events.len() + 8);
    let mut ranks: Vec<u32> = events.iter().map(|e| e.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    for rank in ranks {
        rows.push(Json::Obj(vec![
            ("name".into(), Json::str("process_name")),
            ("ph".into(), Json::str("M")),
            ("pid".into(), Json::num(rank as f64)),
            ("tid".into(), Json::num(0.0)),
            ("args".into(), Json::Obj(vec![("name".into(), Json::str(format!("rank {rank}")))])),
        ]));
    }
    for ev in events {
        let us = |ns: u64| Json::num(ns as f64 / 1e3);
        let base = |name: String, ph: &str| {
            vec![
                ("name".to_string(), Json::str(name)),
                ("ph".to_string(), Json::str(ph)),
                ("ts".to_string(), us(ev.t_ns)),
                ("pid".to_string(), Json::num(ev.rank as f64)),
                ("tid".to_string(), Json::num(ev.lane as f64)),
            ]
        };
        let step = ("step".to_string(), Json::num(ev.step as f64));
        rows.push(match ev.kind {
            EventKind::Phase(p) => {
                let mut fields = base(p.name().to_string(), "X");
                fields.push(("dur".to_string(), us(ev.dur_ns)));
                fields.push(("cat".to_string(), Json::str("phase")));
                fields.push(("args".to_string(), Json::Obj(vec![step])));
                Json::Obj(fields)
            }
            EventKind::Send { channel, peer, bytes, sections, epoch }
            | EventKind::Recv { channel, peer, bytes, sections, epoch } => {
                let dir = if matches!(ev.kind, EventKind::Send { .. }) { "send" } else { "recv" };
                let mut fields = base(format!("{dir} {}", channel.name()), "i");
                fields.push(("s".to_string(), Json::str("t")));
                fields.push(("cat".to_string(), Json::str("comm")));
                fields.push((
                    "args".to_string(),
                    Json::Obj(vec![
                        step,
                        ("channel".to_string(), Json::str(channel.name())),
                        ("peer".to_string(), Json::num(peer as f64)),
                        ("bytes".to_string(), Json::num(bytes as f64)),
                        ("sections".to_string(), Json::num(sections as f64)),
                        ("epoch".to_string(), Json::num(epoch as f64)),
                    ]),
                ));
                Json::Obj(fields)
            }
            EventKind::Checkpoint | EventKind::Rollback | EventKind::Fault => {
                let name = match ev.kind {
                    EventKind::Checkpoint => "checkpoint",
                    EventKind::Rollback => "rollback",
                    _ => "fault",
                };
                let mut fields = base(name.to_string(), "i");
                fields.push(("s".to_string(), Json::str("g")));
                fields.push(("cat".to_string(), Json::str("recovery")));
                fields.push(("args".to_string(), Json::Obj(vec![step])));
                Json::Obj(fields)
            }
            EventKind::Health { peer, state } => {
                let name = match state {
                    0 => "healthy",
                    1 => "suspect",
                    _ => "dead",
                };
                let mut fields = base(format!("rank {peer} {name}"), "i");
                fields.push(("s".to_string(), Json::str("g")));
                fields.push(("cat".to_string(), Json::str("health")));
                fields.push((
                    "args".to_string(),
                    Json::Obj(vec![
                        step,
                        ("peer".to_string(), Json::num(peer as f64)),
                        ("state".to_string(), Json::str(name)),
                    ]),
                ));
                Json::Obj(fields)
            }
            EventKind::Redecompose { rank, lost } => {
                let (label, cat, key) = if lost {
                    (format!("re-decompose (lost rank {rank})"), "recovery", "lost_rank")
                } else {
                    (format!("re-decompose (rebalance, {rank} ranks)"), "rebalance", "ranks")
                };
                let mut fields = base(label, "i");
                fields.push(("s".to_string(), Json::str("g")));
                fields.push(("cat".to_string(), Json::str(cat)));
                fields.push((
                    "args".to_string(),
                    Json::Obj(vec![step, (key.to_string(), Json::num(rank as f64))]),
                ));
                Json::Obj(fields)
            }
        });
    }
    Json::Obj(vec![
        ("displayTimeUnit".to_string(), Json::str("ms")),
        ("traceEvents".to_string(), Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase_ev(step: u64, t_ns: u64, phase: Phase) -> TraceEvent {
        TraceEvent { t_ns, dur_ns: 10, step, rank: 0, lane: 0, kind: EventKind::Phase(phase) }
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tr = Tracer::disabled();
        assert!(!tr.enabled());
        let sink = tr.sink(0, 0);
        assert!(!sink.enabled());
        sink.phase(1, Phase::Eval, 0, 100);
        sink.send(1, CommChannel::Ghosts, 2, 64, 1, 1);
        sink.instant(1, EventKind::Checkpoint);
        assert_eq!(sink.now_ns(), 0, "disabled sink must not read the clock");
        assert_eq!(tr.now_ns(), 0);
        assert!(tr.events().is_empty());
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn events_round_trip_through_the_ring() {
        let tr = Tracer::new();
        let sink = tr.sink(3, 1);
        sink.phase(7, Phase::Enumerate, 100, 50);
        sink.send(7, CommChannel::Forces, 5, 4096, 3, 7);
        sink.recv(7, CommChannel::Migrate, 2, 128, 1, 7);
        sink.instant(8, EventKind::Rollback);
        let evs = tr.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].kind, EventKind::Phase(Phase::Enumerate));
        assert_eq!(evs[0].t_ns, 100);
        assert_eq!(evs[0].dur_ns, 50);
        assert_eq!(evs[0].rank, 3);
        assert_eq!(evs[0].lane, 1);
        assert_eq!(
            evs[1].kind,
            EventKind::Send {
                channel: CommChannel::Forces,
                peer: 5,
                bytes: 4096,
                sections: 3,
                epoch: 7
            }
        );
        assert_eq!(
            evs[2].kind,
            EventKind::Recv {
                channel: CommChannel::Migrate,
                peer: 2,
                bytes: 128,
                sections: 1,
                epoch: 7
            }
        );
        assert_eq!(evs[3].kind, EventKind::Rollback);
        assert_eq!(evs[3].step, 8);
    }

    #[test]
    fn health_and_redecompose_events_round_trip() {
        let tr = Tracer::new();
        let sink = tr.sink(0, 0);
        sink.instant(4, EventKind::Health { peer: 6, state: 1 });
        sink.instant(5, EventKind::Health { peer: 6, state: 2 });
        sink.instant(5, EventKind::Redecompose { rank: 6, lost: true });
        sink.instant(6, EventKind::Redecompose { rank: 8, lost: false });
        let evs = tr.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].kind, EventKind::Health { peer: 6, state: 1 });
        assert_eq!(evs[1].kind, EventKind::Health { peer: 6, state: 2 });
        assert_eq!(evs[2].kind, EventKind::Redecompose { rank: 6, lost: true });
        assert_eq!(evs[3].kind, EventKind::Redecompose { rank: 8, lost: false });
        // The chrome exporter labels the transitions for the timeline.
        let doc = chrome_trace(&evs).to_string();
        assert!(doc.contains("rank 6 suspect"), "{doc}");
        assert!(doc.contains("rank 6 dead"), "{doc}");
        assert!(doc.contains("re-decompose (lost rank 6)"), "{doc}");
        assert!(doc.contains("re-decompose (rebalance, 8 ranks)"), "{doc}");
    }

    #[test]
    fn wraparound_drops_oldest_and_counts_them() {
        let tr = Tracer::with_capacity(8);
        let sink = tr.sink(0, 0);
        for i in 0..20u64 {
            sink.phase(i, Phase::Eval, i * 10, 1);
        }
        assert_eq!(tr.dropped(), 12, "capacity 8, 20 written ⇒ 12 dropped");
        let evs = tr.events();
        assert_eq!(evs.len(), 8, "only the newest `capacity` events survive");
        // The survivors are exactly the 12..19 tail, in order.
        let steps: Vec<u64> = evs.iter().map(|e| e.step).collect();
        assert_eq!(steps, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn emitting_never_allocates_or_blocks_in_steady_state() {
        // The ring is fully pre-allocated at sink creation; pushing is a
        // fetch_add plus word stores. We can't count allocations directly
        // here, but we can assert the ring accepts unbounded writes and
        // stays bounded.
        let tr = Tracer::with_capacity(4);
        let sink = tr.sink(0, 0);
        for i in 0..10_000u64 {
            sink.phase(i, Phase::Bin, i, 1);
        }
        assert_eq!(tr.events().len(), 4);
        assert_eq!(tr.dropped(), 9_996);
    }

    #[test]
    fn merge_orders_across_sinks_with_non_monotonic_cross_thread_timestamps() {
        let tr = Tracer::new();
        let a = tr.sink(0, 0);
        let b = tr.sink(1, 0);
        // Thread B's clock reads interleave non-monotonically with A's:
        // B emits step-1 events with *earlier* t_ns than A's step-1 events,
        // and A emits a step-2 event with an earlier t_ns than B's step-1.
        a.emit(phase_ev(1, 500, Phase::Eval));
        b.emit(TraceEvent { rank: 1, ..phase_ev(1, 100, Phase::Eval) });
        a.emit(phase_ev(2, 50, Phase::Bin));
        b.emit(TraceEvent { rank: 1, ..phase_ev(1, 400, Phase::Reduce) });
        a.emit(phase_ev(1, 200, Phase::Bin));
        let evs = tr.events();
        let key: Vec<(u64, u32, u64)> = evs.iter().map(|e| (e.step, e.rank, e.t_ns)).collect();
        // Sorted by (step, rank, t_ns): all step-1 first (rank 0 then rank
        // 1, each rank's events time-ordered), then step 2.
        assert_eq!(key, vec![(1, 0, 200), (1, 0, 500), (1, 1, 100), (1, 1, 400), (2, 0, 50)]);
    }

    #[test]
    fn concurrent_writers_lose_no_events_below_capacity() {
        let tr = Tracer::with_capacity(100_000);
        std::thread::scope(|scope| {
            for lane in 0..8u32 {
                let sink = tr.sink(0, lane);
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        sink.phase(i, Phase::Compute, i, 1);
                    }
                });
            }
        });
        assert_eq!(tr.events().len(), 8_000);
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn chrome_trace_format_is_loadable_json() {
        let tr = Tracer::new();
        let s0 = tr.sink(0, 0);
        let s1 = tr.sink(1, 0);
        s0.phase(1, Phase::Eval, 1000, 500);
        s1.send(1, CommChannel::Ghosts, 0, 64, 2, 1);
        s1.instant(2, EventKind::Checkpoint);
        let doc = chrome_trace(&tr.events());
        let text = doc.to_string();
        let parsed = Json::parse(&text).unwrap();
        let rows = parsed.get("traceEvents").unwrap().as_array().unwrap();
        // 2 metadata rows (one per rank) + 3 events.
        assert_eq!(rows.len(), 5);
        let phase_row = rows.iter().find(|r| r.get("ph").unwrap().as_str() == Some("X")).unwrap();
        assert_eq!(phase_row.get("name").unwrap().as_str(), Some("eval"));
        assert_eq!(phase_row.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(phase_row.get("dur").unwrap().as_f64(), Some(0.5));
        let send_row =
            rows.iter().find(|r| r.get("name").unwrap().as_str() == Some("send ghosts")).unwrap();
        assert_eq!(send_row.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(send_row.get("args").unwrap().get("bytes").unwrap().as_f64(), Some(64.0));
        assert_eq!(send_row.get("args").unwrap().get("sections").unwrap().as_f64(), Some(2.0));
    }
}
