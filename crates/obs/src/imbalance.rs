//! Load-imbalance profiling: per-rank × per-phase aggregation producing an
//! imbalance report.
//!
//! Ferrell & Bertschinger's inhomogeneous-distribution results (and the SC
//! paper's own Fig. 9 efficiency argument) make per-rank load imbalance the
//! dominant scaling killer: a step is as slow as its slowest rank, so the
//! observable that matters is the **max/mean compute ratio** across ranks,
//! together with each rank's **communication-wait fraction** and its ghost
//! import volume measured against the SC prediction
//! `Vω = (l + n − 1)³ − l³` (Eq. 33).
//!
//! Reports build from either source of per-rank data and agree with each
//! other by construction:
//!
//! - [`ImbalanceReport::from_per_rank`] aggregates the executors'
//!   [`CommCounters`] (what `Telemetry` carries), or
//! - [`ImbalanceReport::from_events`] aggregates a merged trace
//!   ([`crate::TraceEvent`]s) when event-level data is available.

use crate::comm::CommCounters;
use crate::json::Json;
use crate::phase::Phase;
use crate::trace::{EventKind, TraceEvent};

/// The SC import-volume prediction `Vω = (l + n − 1)³ − l³` (Eq. 33) for a
/// rank sub-box of `l` cells per side computing `n`-tuples: the number of
/// cells a rank must import beyond the ones it owns.
pub fn v_omega(l: f64, n: u32) -> f64 {
    (l + n as f64 - 1.0).powi(3) - l.powi(3)
}

/// One rank's aggregated load, as seen by an [`ImbalanceReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankLoad {
    /// Rank id.
    pub rank: u32,
    /// Compute seconds (bin + enumerate + eval + aggregate compute).
    pub compute_s: f64,
    /// Communication seconds (exchange + migrate + reduce).
    pub comm_s: f64,
    /// Ghost atoms imported (the empirical Eq. 31/33 observable).
    pub ghosts_imported: u64,
    /// Tuples evaluated by this rank, when the caller supplied them
    /// (0 when unknown — `CommCounters` does not carry tuple counts).
    pub tuples: u64,
}

impl RankLoad {
    /// Fraction of this rank's accounted time spent waiting on
    /// communication phases: `comm / (compute + comm)`.
    pub fn comm_wait_fraction(&self) -> f64 {
        let total = self.compute_s + self.comm_s;
        if total <= 0.0 {
            return 0.0;
        }
        self.comm_s / total
    }
}

/// Per-rank load aggregation with the imbalance summary statistics the
/// paper's scaling argument turns on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImbalanceReport {
    /// One entry per rank, sorted by rank id.
    pub per_rank: Vec<RankLoad>,
    /// Predicted import volume `Vω` in cells, when the caller supplied the
    /// sub-box geometry via [`ImbalanceReport::with_import_prediction`].
    pub predicted_import_cells: Option<f64>,
}

impl ImbalanceReport {
    /// Builds a report from per-rank [`CommCounters`] (the form `Telemetry`
    /// carries). Compute time is each rank's
    /// [`PhaseBreakdown::compute_total_s`]; comm time is
    /// exchange + migrate + reduce.
    pub fn from_per_rank(per_rank: &[CommCounters]) -> ImbalanceReport {
        let loads = per_rank
            .iter()
            .enumerate()
            .map(|(rank, c)| RankLoad {
                rank: rank as u32,
                compute_s: c.phases.compute_total_s() + c.phases.integrate_s(),
                comm_s: c.phases.exchange_s() + c.phases.migrate_s() + c.phases.reduce_s(),
                ghosts_imported: c.ghosts_imported,
                tuples: 0,
            })
            .collect();
        ImbalanceReport { per_rank: loads, predicted_import_cells: None }
    }

    /// Builds a report from a merged trace by summing each rank's phase
    /// intervals. Instant events (comm markers, recovery markers) carry no
    /// duration and do not contribute time.
    pub fn from_events(events: &[TraceEvent]) -> ImbalanceReport {
        let mut ranks: Vec<u32> = events.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        let mut loads: Vec<RankLoad> =
            ranks.iter().map(|&rank| RankLoad { rank, ..RankLoad::default() }).collect();
        for ev in events {
            let load = loads.iter_mut().find(|l| l.rank == ev.rank).unwrap();
            if let EventKind::Phase(p) = ev.kind {
                let secs = ev.dur_ns as f64 / 1e9;
                match p {
                    Phase::Exchange | Phase::Migrate | Phase::Reduce => load.comm_s += secs,
                    Phase::Bin
                    | Phase::Enumerate
                    | Phase::Eval
                    | Phase::Integrate
                    | Phase::Compute => load.compute_s += secs,
                }
            }
        }
        ImbalanceReport { per_rank: loads, predicted_import_cells: None }
    }

    /// Attaches per-rank tuple counts (entry `i` goes to `per_rank[i]`).
    pub fn with_tuples(mut self, tuples: &[u64]) -> ImbalanceReport {
        for (load, &t) in self.per_rank.iter_mut().zip(tuples) {
            load.tuples = t;
        }
        self
    }

    /// Attaches the Eq. 33 import-volume prediction for a rank sub-box of
    /// `l` cells per side under `n`-tuple computation.
    pub fn with_import_prediction(mut self, l: f64, n: u32) -> ImbalanceReport {
        self.predicted_import_cells = Some(v_omega(l, n));
        self
    }

    /// Number of ranks in the report.
    pub fn ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// Maximum per-rank compute seconds.
    pub fn max_compute_s(&self) -> f64 {
        self.per_rank.iter().map(|l| l.compute_s).fold(0.0, f64::max)
    }

    /// Mean per-rank compute seconds.
    pub fn mean_compute_s(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 0.0;
        }
        self.per_rank.iter().map(|l| l.compute_s).sum::<f64>() / self.per_rank.len() as f64
    }

    /// The load-imbalance ratio `max / mean` over per-rank compute time —
    /// 1.0 is perfectly balanced; a step is as slow as its slowest rank, so
    /// parallel efficiency is bounded by `1 / ratio`.
    pub fn compute_imbalance(&self) -> f64 {
        let mean = self.mean_compute_s();
        if mean <= 0.0 {
            return 1.0;
        }
        self.max_compute_s() / mean
    }

    /// Aggregate communication-wait fraction:
    /// `Σ comm / Σ (compute + comm)` over all ranks.
    pub fn comm_wait_fraction(&self) -> f64 {
        let comm: f64 = self.per_rank.iter().map(|l| l.comm_s).sum();
        let total: f64 = self.per_rank.iter().map(|l| l.compute_s + l.comm_s).sum();
        if total <= 0.0 {
            return 0.0;
        }
        comm / total
    }

    /// Total ghost atoms imported across ranks (empirical import volume).
    pub fn total_ghosts_imported(&self) -> u64 {
        self.per_rank.iter().map(|l| l.ghosts_imported).sum()
    }

    /// Renders the report as a JSON object (the `imbalance` telemetry
    /// section).
    pub fn to_json_value(&self) -> Json {
        let per_rank = self
            .per_rank
            .iter()
            .map(|l| {
                Json::Obj(vec![
                    ("rank".into(), Json::num(l.rank as f64)),
                    ("compute_s".into(), Json::num(l.compute_s)),
                    ("comm_s".into(), Json::num(l.comm_s)),
                    ("comm_wait_fraction".into(), Json::num(l.comm_wait_fraction())),
                    ("ghosts_imported".into(), Json::num(l.ghosts_imported as f64)),
                    ("tuples".into(), Json::num(l.tuples as f64)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("ranks".to_string(), Json::num(self.ranks() as f64)),
            ("max_compute_s".to_string(), Json::num(self.max_compute_s())),
            ("mean_compute_s".to_string(), Json::num(self.mean_compute_s())),
            ("compute_imbalance".to_string(), Json::num(self.compute_imbalance())),
            ("comm_wait_fraction".to_string(), Json::num(self.comm_wait_fraction())),
            ("ghosts_imported".to_string(), Json::num(self.total_ghosts_imported() as f64)),
            ("per_rank".to_string(), Json::Arr(per_rank)),
        ];
        if let Some(v) = self.predicted_import_cells {
            fields.insert(6, ("predicted_import_cells".to_string(), Json::num(v)));
        }
        Json::Obj(fields)
    }

    /// Renders the report as a fixed-width human table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "load imbalance over {} rank(s): max/mean compute = {:.3}, comm-wait = {:.1}%\n",
            self.ranks(),
            self.compute_imbalance(),
            self.comm_wait_fraction() * 100.0
        ));
        if let Some(v) = self.predicted_import_cells {
            out.push_str(&format!("predicted import volume (Eq. 33): {v:.1} cells\n"));
        }
        out.push_str("rank     compute_s        comm_s  comm-wait%        ghosts        tuples\n");
        for l in &self.per_rank {
            out.push_str(&format!(
                "{:>4}  {:>12.6}  {:>12.6}  {:>9.1}%  {:>12}  {:>12}\n",
                l.rank,
                l.compute_s,
                l.comm_s,
                l.comm_wait_fraction() * 100.0,
                l.ghosts_imported,
                l.tuples
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(compute_s: f64, comm_s: f64, ghosts: u64) -> CommCounters {
        let mut c = CommCounters::default();
        c.phases.add(Phase::Eval, compute_s * 0.75);
        c.phases.add(Phase::Bin, compute_s * 0.25);
        c.phases.add(Phase::Exchange, comm_s * 0.5);
        c.phases.add(Phase::Reduce, comm_s * 0.5);
        c.ghosts_imported = ghosts;
        c
    }

    #[test]
    fn v_omega_matches_eq_33() {
        // l=8, n=2: (8+1)³ − 8³ = 729 − 512 = 217.
        assert_eq!(v_omega(8.0, 2), 217.0);
        // l=8, n=3: 10³ − 8³ = 488.
        assert_eq!(v_omega(8.0, 3), 488.0);
        // Degenerate n=1: no import at all.
        assert_eq!(v_omega(8.0, 1), 0.0);
    }

    #[test]
    fn report_from_counters_computes_ratio_and_wait() {
        let ranks = vec![counters(2.0, 0.5, 100), counters(1.0, 0.5, 80), counters(1.0, 1.0, 120)];
        let rep = ImbalanceReport::from_per_rank(&ranks).with_tuples(&[10, 20, 30]);
        assert_eq!(rep.ranks(), 3);
        assert!((rep.max_compute_s() - 2.0).abs() < 1e-12);
        assert!((rep.mean_compute_s() - 4.0 / 3.0).abs() < 1e-12);
        assert!((rep.compute_imbalance() - 1.5).abs() < 1e-12);
        // Σcomm / Σtotal = 2.0 / 6.0.
        assert!((rep.comm_wait_fraction() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(rep.total_ghosts_imported(), 300);
        assert_eq!(rep.per_rank[1].tuples, 20);
        // Per-rank wait fraction of rank 2: 1.0 / 2.0.
        assert!((rep.per_rank[2].comm_wait_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_from_events_agrees_with_counters() {
        let mk = |rank: u32, phase: Phase, dur_ns: u64| TraceEvent {
            t_ns: 0,
            dur_ns,
            step: 1,
            rank,
            lane: 0,
            kind: EventKind::Phase(phase),
        };
        let events = vec![
            mk(0, Phase::Eval, 2_000_000_000),
            mk(0, Phase::Exchange, 500_000_000),
            mk(1, Phase::Eval, 1_000_000_000),
            mk(1, Phase::Reduce, 500_000_000),
        ];
        let rep = ImbalanceReport::from_events(&events);
        assert_eq!(rep.ranks(), 2);
        assert!((rep.per_rank[0].compute_s - 2.0).abs() < 1e-9);
        assert!((rep.per_rank[0].comm_s - 0.5).abs() < 1e-9);
        assert!((rep.per_rank[1].comm_wait_fraction() - 1.0 / 3.0).abs() < 1e-9);
        let from_counters =
            ImbalanceReport::from_per_rank(&[counters(2.0, 0.5, 0), counters(1.0, 0.5, 0)]);
        assert!((rep.compute_imbalance() - from_counters.compute_imbalance()).abs() < 1e-9);
        assert!((rep.comm_wait_fraction() - from_counters.comm_wait_fraction()).abs() < 1e-9);
    }

    #[test]
    fn json_and_table_render() {
        let rep = ImbalanceReport::from_per_rank(&[counters(1.0, 0.25, 42)])
            .with_import_prediction(8.0, 2);
        let v = rep.to_json_value();
        assert_eq!(v.get("ranks").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("predicted_import_cells").unwrap().as_f64(), Some(217.0));
        let per_rank = v.get("per_rank").unwrap().as_array().unwrap();
        assert_eq!(per_rank[0].get("ghosts_imported").unwrap().as_f64(), Some(42.0));
        // Round-trips through the writer/parser.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        let table = rep.render_table();
        assert!(table.contains("max/mean compute"));
        assert!(table.contains("Eq. 33"));
        assert!(table.contains("42"));
    }

    #[test]
    fn empty_report_is_neutral() {
        let rep = ImbalanceReport::from_per_rank(&[]);
        assert_eq!(rep.compute_imbalance(), 1.0);
        assert_eq!(rep.comm_wait_fraction(), 0.0);
        assert_eq!(rep.ranks(), 0);
    }
}
