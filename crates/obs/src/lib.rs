//! # sc-obs — the unified observability layer
//!
//! One registry for everything the paper measures. The SC-MD claims are
//! phase-resolved — enumeration cost (Eq. 29), import volume (Eq. 31/33),
//! compute-vs-comm crossovers (§5) — so this crate gives every layer of
//! the runtime a single place to record:
//!
//! - **per-phase time** over a fixed [`Phase`] taxonomy ([`PhaseBreakdown`],
//!   scoped [`Span`] timers, [`Registry::record_phase`]),
//! - **counters / gauges / histograms** (lock-free, atomic, pre-registered
//!   by name),
//! - **communication accounting** ([`CommCounters`], the empirical Eq. 31
//!   counterpart shared by the distributed executors).
//!
//! A [`Registry`] is cheap to clone and thread-safe; the
//! [`Registry::disabled`] variant hands out inert handles so the engine
//! can instrument hot paths unconditionally with no allocation and no
//! clock reads when observability is off.
//!
//! Snapshots ([`Registry::snapshot`]) render through three exporters:
//! [`human_table`], [`json_line`] (trajectory-style JSON lines), and
//! [`prometheus`] text format. The [`json`] and [`schema`] modules carry a
//! dependency-free JSON value type and a small schema validator used by the
//! CI metrics check (the workspace's vendored `serde` is a no-op shim, so
//! JSON is hand-rolled here).

#![warn(missing_docs)]

mod comm;
mod export;
mod imbalance;
pub mod json;
mod phase;
mod registry;
pub mod schema;
pub mod trace;

pub use comm::CommCounters;
pub use export::{human_table, json_line, json_value, prometheus, prometheus_with_labels};
pub use imbalance::{v_omega, ImbalanceReport, RankLoad};
pub use phase::{Phase, PhaseBreakdown};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, Span};
pub use trace::{chrome_trace, CommChannel, EventKind, TraceEvent, TraceSink, Tracer};
