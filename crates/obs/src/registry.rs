//! The lock-free metrics registry: atomic counters, gauges, fixed-bucket
//! histograms, per-phase time accumulators, and scoped span timers.
//!
//! Design points:
//!
//! - **Hot path is lock-free.** Handle types ([`Counter`], [`Gauge`],
//!   [`Histogram`], [`Span`]) operate on pre-registered atomics with
//!   `Relaxed` ordering; the registry mutex is taken only at registration
//!   time (once per metric, at setup).
//! - **Disabled mode is free.** [`Registry::disabled`] carries no
//!   allocation at all — every handle it hands out is an empty shell whose
//!   operations compile to a branch on a `None`, and [`Span`] does not even
//!   read the clock. The engine can therefore wire metrics unconditionally.
//! - **Registration is idempotent.** Asking for the same name twice returns
//!   a handle to the same underlying cell, so independently-constructed
//!   components can share a series.

use crate::phase::{Phase, PhaseBreakdown};
use crate::trace::TraceSink;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A shared, clonable handle to one metrics registry (or to the disabled
/// no-op registry). Cloning is cheap and all clones observe the same data.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug)]
struct Inner {
    /// Identity label stamped onto every snapshot taken from this registry
    /// (`None` for an unlabeled registry). The job service uses this to
    /// route per-job telemetry: each job gets `Registry::labeled(job_id)`
    /// and exporters carry the label through, so multiplexed jobs stay
    /// distinguishable in one sink.
    label: Option<String>,
    /// Nanoseconds accumulated per phase slot.
    phase_ns: [AtomicU64; Phase::COUNT],
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    /// Gauges store `f64::to_bits` in the atomic.
    gauges: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    histograms: Mutex<Vec<(String, Arc<HistogramCore>)>>,
    /// Heap allocations performed by the registry itself (one per first
    /// registration of a metric name). Steady-state operation adds none.
    allocations: AtomicU64,
}

impl Inner {
    fn new(label: Option<String>) -> Self {
        Inner {
            label,
            phase_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
            allocations: AtomicU64::new(0),
        }
    }

    fn add_phase_ns(&self, phase: Phase, ns: u64) {
        self.phase_ns[phase.index()].fetch_add(ns, Ordering::Relaxed);
    }
}

impl Registry {
    /// A live registry that records everything fed to it.
    pub fn new() -> Self {
        Registry { inner: Some(Arc::new(Inner::new(None))) }
    }

    /// A live registry whose snapshots carry an identity `label` — one per
    /// job in the job service, so exporters can tell multiplexed series
    /// apart. Otherwise identical to [`Registry::new`].
    pub fn labeled(label: impl Into<String>) -> Self {
        Registry { inner: Some(Arc::new(Inner::new(Some(label.into())))) }
    }

    /// The identity label, if this registry was built with
    /// [`Registry::labeled`].
    pub fn label(&self) -> Option<&str> {
        self.inner.as_ref()?.label.as_deref()
    }

    /// The no-op registry: hands out inert handles, performs no allocation,
    /// and never reads the clock. This is the [`Default`].
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this handle points at a live registry.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or look up) a monotonic counter by name.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.cell(name, CellKind::Counter))
    }

    /// Register (or look up) a last-value gauge by name.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.cell(name, CellKind::Gauge))
    }

    fn cell(&self, name: &str, kind: CellKind) -> Option<Arc<AtomicU64>> {
        let inner = self.inner.as_ref()?;
        let mut map = match kind {
            CellKind::Counter => inner.counters.lock().unwrap(),
            CellKind::Gauge => inner.gauges.lock().unwrap(),
        };
        if let Some((_, cell)) = map.iter().find(|(n, _)| n == name) {
            return Some(cell.clone());
        }
        let cell = Arc::new(AtomicU64::new(0));
        map.push((name.to_string(), cell.clone()));
        inner.allocations.fetch_add(1, Ordering::Relaxed);
        Some(cell)
    }

    /// Register (or look up) a fixed-bucket histogram. `bounds` are the
    /// inclusive upper edges of the finite buckets, strictly ascending; an
    /// implicit overflow bucket catches everything above the last bound. If
    /// the name already exists, the existing histogram is returned and
    /// `bounds` is ignored.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let Some(inner) = self.inner.as_ref() else {
            return Histogram(None);
        };
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must ascend");
        let mut map = inner.histograms.lock().unwrap();
        if let Some((_, core)) = map.iter().find(|(n, _)| n == name) {
            return Histogram(Some(core.clone()));
        }
        let core = Arc::new(HistogramCore::new(bounds));
        map.push((name.to_string(), core.clone()));
        inner.allocations.fetch_add(1, Ordering::Relaxed);
        Histogram(Some(core))
    }

    /// Start a scoped timer that adds its elapsed wall time to `phase` when
    /// dropped. Spans nest lexically — an inner span's time is also inside
    /// the outer span's, exactly as the paper's nested cost terms nest. On
    /// a disabled registry the span is inert and the clock is never read.
    #[must_use = "a span records on drop; binding it to _ discards the timing"]
    pub fn span(&self, phase: Phase) -> Span {
        Span {
            inner: self.inner.clone(),
            trace: None,
            phase,
            start: self.inner.is_some().then(Instant::now),
        }
    }

    /// Like [`Registry::span`], but the span additionally emits a
    /// [`crate::TraceEvent`] for `phase` into `sink` on drop, stamped with
    /// `step`. When both the registry and the sink are disabled the span is
    /// fully inert and the clock is never read.
    #[must_use = "a span records on drop; binding it to _ discards the timing"]
    pub fn span_traced(&self, phase: Phase, sink: &TraceSink, step: u64) -> Span {
        let trace = sink.enabled().then(|| (sink.clone(), step, sink.now_ns()));
        let start = (self.inner.is_some() || trace.is_some()).then(Instant::now);
        Span { inner: self.inner.clone(), trace, phase, start }
    }

    /// Add an externally-measured duration (in seconds) to a phase slot.
    pub fn record_phase(&self, phase: Phase, secs: f64) {
        if let Some(inner) = &self.inner {
            if secs > 0.0 {
                inner.add_phase_ns(phase, (secs * 1e9) as u64);
            }
        }
    }

    /// Seconds accumulated in one phase slot.
    pub fn phase_s(&self, phase: Phase) -> f64 {
        match &self.inner {
            Some(inner) => inner.phase_ns[phase.index()].load(Ordering::Relaxed) as f64 / 1e9,
            None => 0.0,
        }
    }

    /// The full per-phase time breakdown recorded so far.
    pub fn phases(&self) -> PhaseBreakdown {
        let mut p = PhaseBreakdown::new();
        for phase in Phase::ALL {
            p.set(phase, self.phase_s(phase));
        }
        p
    }

    /// Heap allocations the registry itself has performed (one per first
    /// registration). A disabled registry always reports 0; an enabled one
    /// stops growing once every metric is registered, so a flat reading
    /// across steps certifies an allocation-free steady state.
    pub fn allocation_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.allocations.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Take a consistent point-in-time copy of everything recorded, with
    /// series sorted by name for deterministic export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            label: self.label().map(str::to_string),
            phases: self.phases(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        let Some(inner) = &self.inner else { return snap };
        for (name, cell) in inner.counters.lock().unwrap().iter() {
            snap.counters.push((name.clone(), cell.load(Ordering::Relaxed)));
        }
        for (name, cell) in inner.gauges.lock().unwrap().iter() {
            snap.gauges.push((name.clone(), f64::from_bits(cell.load(Ordering::Relaxed))));
        }
        for (name, core) in inner.histograms.lock().unwrap().iter() {
            snap.histograms.push(core.snapshot(name));
        }
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }
}

enum CellKind {
    Counter,
    Gauge,
}

/// A monotonic counter handle. Inert when obtained from a disabled registry.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for an inert handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-value gauge handle holding an `f64`. Inert when obtained from a
/// disabled registry.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Overwrite the gauge value.
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for an inert handle).
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper edges of the finite buckets, ascending.
    bounds: Vec<f64>,
    /// One count per finite bucket plus a trailing overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A fixed-bucket histogram handle. Inert when obtained from a disabled
/// registry.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, value: f64) {
        if let Some(core) = &self.0 {
            core.observe(value);
        }
    }

    /// Number of observations recorded so far (0 for an inert handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |core| core.count.load(Ordering::Relaxed))
    }
}

/// A scoped phase timer; records elapsed wall time into its phase slot when
/// dropped, and (if obtained from [`Registry::span_traced`]) also emits a
/// trace event covering the interval. Obtained from [`Registry::span`].
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<Inner>>,
    /// `(sink, step, start_ns)` when trace emission is armed.
    trace: Option<(TraceSink, u64, u64)>,
    phase: Phase,
    /// `None` when both the registry and the trace are disabled — the clock
    /// is never read for a fully-inert span.
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else { return };
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        if let Some(inner) = self.inner.take() {
            inner.add_phase_ns(self.phase, elapsed_ns);
        }
        if let Some((sink, step, start_ns)) = self.trace.take() {
            sink.phase(step, self.phase, start_ns, elapsed_ns);
        }
    }
}

/// Point-in-time copy of a registry's contents, ready for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Identity label of the registry the snapshot came from (`None` for an
    /// unlabeled registry). Exporters include it as a `job` label / field
    /// only when present, so unlabeled output is byte-identical to before.
    pub label: Option<String>,
    /// Per-phase accumulated seconds.
    pub phases: PhaseBreakdown,
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Series name.
    pub name: String,
    /// Inclusive upper edges of the finite buckets.
    pub bounds: Vec<f64>,
    /// Counts per bucket; one longer than `bounds` (trailing overflow).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let reg = Registry::new();
        let c = reg.counter("steps");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent registration: same cell.
        assert_eq!(reg.counter("steps").get(), 5);
        let g = reg.gauge("temp");
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        g.set(-2.0);
        assert_eq!(reg.gauge("temp").get(), -2.0);
    }

    #[test]
    fn disabled_registry_is_inert_and_allocation_free() {
        let reg = Registry::disabled();
        assert!(!reg.enabled());
        let c = reg.counter("never");
        c.add(100);
        assert_eq!(c.get(), 0);
        reg.gauge("g").set(3.0);
        reg.histogram("h", &[1.0]).observe(0.5);
        reg.record_phase(Phase::Eval, 1.0);
        drop(reg.span(Phase::Bin));
        assert_eq!(reg.allocation_events(), 0);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
        assert_eq!(snap.phases.total_s(), 0.0);
    }

    #[test]
    fn allocation_events_stop_after_registration() {
        let reg = Registry::new();
        reg.counter("a");
        reg.gauge("b");
        reg.histogram("c", &[1.0, 2.0]);
        let after_setup = reg.allocation_events();
        assert_eq!(after_setup, 3);
        for _ in 0..100 {
            reg.counter("a").inc();
            reg.gauge("b").set(1.0);
            reg.histogram("c", &[1.0, 2.0]).observe(1.5);
            reg.record_phase(Phase::Eval, 1e-6);
        }
        assert_eq!(reg.allocation_events(), after_setup);
    }

    #[test]
    fn labeled_registry_stamps_snapshots() {
        let reg = Registry::labeled("job-7");
        assert!(reg.enabled());
        assert_eq!(reg.label(), Some("job-7"));
        reg.counter("steps").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.label.as_deref(), Some("job-7"));
        // Unlabeled and disabled registries stay label-free.
        assert_eq!(Registry::new().label(), None);
        assert_eq!(Registry::new().snapshot().label, None);
        assert_eq!(Registry::disabled().label(), None);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_edges() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.0001, 2.0, 3.9, 4.0, 4.0001, 100.0] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.name, "lat");
        // ≤1: {0.5, 1.0}; ≤2: {1.0001, 2.0}; ≤4: {3.9, 4.0}; overflow: {4.0001, 100}.
        assert_eq!(hs.counts, vec![2, 2, 2, 2]);
        assert_eq!(hs.count, 8);
        assert!((hs.sum - 116.4002).abs() < 1e-9);
    }

    #[test]
    fn spans_accumulate_into_phase_slots() {
        let reg = Registry::new();
        {
            let _outer = reg.span(Phase::Compute);
            let _inner = reg.span(Phase::Eval);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        reg.record_phase(Phase::Reduce, 0.125);
        let p = reg.phases();
        assert!(p.compute_s() > 0.0);
        assert!(p.eval_s() > 0.0);
        assert!((p.reduce_s() - 0.125).abs() < 1e-9);
        // Nested spans both cover the sleep.
        assert!(p.compute_s() >= p.eval_s() * 0.5);
    }

    #[test]
    fn counters_sum_exactly_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("work");
        let h = reg.histogram("obs", &[10.0, 100.0]);
        std::thread::scope(|scope| {
            for lane in 0..8 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        if i % 100 == 0 {
                            h.observe(lane as f64);
                        }
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 800);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("work".to_string(), 80_000)]);
        assert_eq!(snap.histograms[0].counts.iter().sum::<u64>(), 800);
    }
}
