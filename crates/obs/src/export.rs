//! Exporters: render a [`MetricsSnapshot`] as a human table, a JSON line,
//! or Prometheus text exposition format.

use crate::json::Json;
use crate::registry::MetricsSnapshot;
use std::fmt::Write;

/// Renders a snapshot as an aligned human-readable table. Phase rows with
/// zero time are omitted; an empty snapshot renders a single header line.
pub fn human_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("metric                              value\n");
    for (phase, secs) in snap.phases.iter() {
        if secs > 0.0 {
            let _ = writeln!(out, "phase.{:<29} {:.6} s", phase.name(), secs);
        }
    }
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "{name:<35} {value}");
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(out, "{name:<35} {value}");
    }
    for h in &snap.histograms {
        let _ = writeln!(out, "{:<35} n={} sum={}", h.name, h.count, h.sum);
        for (i, &count) in h.counts.iter().enumerate() {
            let edge = match h.bounds.get(i) {
                Some(b) => format!("≤ {b}"),
                None => "> rest".to_string(),
            };
            let _ = writeln!(out, "  {edge:<33} {count}");
        }
    }
    out
}

/// Renders a snapshot as one compact JSON line (newline not included) —
/// the `BENCH_*.json`-style trajectory record.
pub fn json_line(snap: &MetricsSnapshot) -> String {
    json_value(snap).to_string()
}

/// Builds the JSON value behind [`json_line`], for callers that want to
/// embed a snapshot in a larger document.
pub fn json_value(snap: &MetricsSnapshot) -> Json {
    let phases = Json::Obj(
        snap.phases.iter().map(|(p, secs)| (format!("{}_s", p.name()), Json::num(secs))).collect(),
    );
    let counters =
        Json::Obj(snap.counters.iter().map(|(n, v)| (n.clone(), Json::num(*v as f64))).collect());
    let gauges = Json::Obj(snap.gauges.iter().map(|(n, v)| (n.clone(), Json::num(*v))).collect());
    let histograms = Json::Arr(
        snap.histograms
            .iter()
            .map(|h| {
                Json::Obj(vec![
                    ("name".to_string(), Json::str(h.name.clone())),
                    (
                        "bounds".to_string(),
                        Json::Arr(h.bounds.iter().map(|&b| Json::num(b)).collect()),
                    ),
                    (
                        "counts".to_string(),
                        Json::Arr(h.counts.iter().map(|&c| Json::num(c as f64)).collect()),
                    ),
                    ("count".to_string(), Json::num(h.count as f64)),
                    ("sum".to_string(), Json::num(h.sum)),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("phases".to_string(), phases),
        ("counters".to_string(), counters),
        ("gauges".to_string(), gauges),
        ("histograms".to_string(), histograms),
    ])
}

/// Renders a snapshot in Prometheus text exposition format. Metric names
/// are sanitized (non-alphanumeric characters become `_`).
pub fn prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("# TYPE sc_phase_seconds_total counter\n");
    for (phase, secs) in snap.phases.iter() {
        let _ = writeln!(out, "sc_phase_seconds_total{{phase=\"{}\"}} {}", phase.name(), secs);
    }
    for (name, value) in &snap.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
    }
    for h in &snap.histograms {
        let name = sanitize(&h.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &count) in h.counts.iter().enumerate() {
            cumulative += count;
            let edge = match h.bounds.get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{edge}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;
    use crate::registry::Registry;

    /// A registry with deterministic contents for golden-output tests.
    fn golden_registry() -> Registry {
        let reg = Registry::new();
        reg.record_phase(Phase::Bin, 0.5);
        reg.record_phase(Phase::Eval, 1.25);
        reg.counter("comm.bytes").add(4096);
        reg.counter("sim.steps").add(10);
        reg.gauge("sim.temperature").set(1.5);
        let h = reg.histogram("comm.step_bytes", &[100.0, 1000.0]);
        h.observe(50.0);
        h.observe(500.0);
        h.observe(5000.0);
        reg
    }

    #[test]
    fn human_table_golden() {
        let table = human_table(&golden_registry().snapshot());
        let expected = "\
metric                              value
phase.bin                           0.500000 s
phase.eval                          1.250000 s
comm.bytes                          4096
sim.steps                           10
sim.temperature                     1.5
comm.step_bytes                     n=3 sum=5550
  ≤ 100                             1
  ≤ 1000                            1
  > rest                            1
";
        assert_eq!(table, expected);
    }

    #[test]
    fn json_line_golden_and_parses_back() {
        let line = json_line(&golden_registry().snapshot());
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("phases").unwrap().get("bin_s").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("phases").unwrap().get("exchange_s").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("counters").unwrap().get("comm.bytes").unwrap().as_f64(), Some(4096.0));
        let h = &v.get("histograms").unwrap().as_array().unwrap()[0];
        assert_eq!(h.get("name").unwrap().as_str(), Some("comm.step_bytes"));
        assert_eq!(h.get("counts").unwrap().as_array().unwrap().len(), 3);
        // Counters come out sorted, so the line itself is deterministic.
        assert!(line.starts_with(r#"{"phases":{"bin_s":0.5,"#), "{line}");
    }

    #[test]
    fn prometheus_golden() {
        let text = prometheus(&golden_registry().snapshot());
        let expected = "\
# TYPE sc_phase_seconds_total counter
sc_phase_seconds_total{phase=\"bin\"} 0.5
sc_phase_seconds_total{phase=\"exchange\"} 0
sc_phase_seconds_total{phase=\"enumerate\"} 0
sc_phase_seconds_total{phase=\"eval\"} 1.25
sc_phase_seconds_total{phase=\"reduce\"} 0
sc_phase_seconds_total{phase=\"migrate\"} 0
sc_phase_seconds_total{phase=\"integrate\"} 0
sc_phase_seconds_total{phase=\"compute\"} 0
# TYPE comm_bytes counter
comm_bytes 4096
# TYPE sim_steps counter
sim_steps 10
# TYPE sim_temperature gauge
sim_temperature 1.5
# TYPE comm_step_bytes histogram
comm_step_bytes_bucket{le=\"100\"} 1
comm_step_bytes_bucket{le=\"1000\"} 2
comm_step_bytes_bucket{le=\"+Inf\"} 3
comm_step_bytes_sum 5550
comm_step_bytes_count 3
";
        assert_eq!(text, expected);
    }
}
