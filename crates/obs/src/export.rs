//! Exporters: render a [`MetricsSnapshot`] as a human table, a JSON line,
//! or Prometheus text exposition format.

use crate::json::Json;
use crate::registry::MetricsSnapshot;
use std::fmt::Write;

/// Renders a snapshot as an aligned human-readable table. Phase rows with
/// zero time are omitted; an empty snapshot renders a single header line.
pub fn human_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("metric                              value\n");
    if let Some(label) = &snap.label {
        let _ = writeln!(out, "{:<35} {label}", "job");
    }
    for (phase, secs) in snap.phases.iter() {
        if secs > 0.0 {
            let _ = writeln!(out, "phase.{:<29} {:.6} s", phase.name(), secs);
        }
    }
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "{name:<35} {value}");
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(out, "{name:<35} {value}");
    }
    for h in &snap.histograms {
        let _ = writeln!(out, "{:<35} n={} sum={}", h.name, h.count, h.sum);
        for (i, &count) in h.counts.iter().enumerate() {
            let edge = match h.bounds.get(i) {
                Some(b) => format!("≤ {b}"),
                None => "> rest".to_string(),
            };
            let _ = writeln!(out, "  {edge:<33} {count}");
        }
    }
    out
}

/// Renders a snapshot as one compact JSON line (newline not included) —
/// the `BENCH_*.json`-style trajectory record.
pub fn json_line(snap: &MetricsSnapshot) -> String {
    json_value(snap).to_string()
}

/// Builds the JSON value behind [`json_line`], for callers that want to
/// embed a snapshot in a larger document.
pub fn json_value(snap: &MetricsSnapshot) -> Json {
    let phases = Json::Obj(
        snap.phases.iter().map(|(p, secs)| (format!("{}_s", p.name()), Json::num(secs))).collect(),
    );
    let counters =
        Json::Obj(snap.counters.iter().map(|(n, v)| (n.clone(), Json::num(*v as f64))).collect());
    let gauges = Json::Obj(snap.gauges.iter().map(|(n, v)| (n.clone(), Json::num(*v))).collect());
    let histograms = Json::Arr(
        snap.histograms
            .iter()
            .map(|h| {
                Json::Obj(vec![
                    ("name".to_string(), Json::str(h.name.clone())),
                    (
                        "bounds".to_string(),
                        Json::Arr(h.bounds.iter().map(|&b| Json::num(b)).collect()),
                    ),
                    (
                        "counts".to_string(),
                        Json::Arr(h.counts.iter().map(|&c| Json::num(c as f64)).collect()),
                    ),
                    ("count".to_string(), Json::num(h.count as f64)),
                    ("sum".to_string(), Json::num(h.sum)),
                ])
            })
            .collect(),
    );
    let mut fields = Vec::with_capacity(5);
    if let Some(label) = &snap.label {
        fields.push(("job".to_string(), Json::str(label.clone())));
    }
    fields.extend([
        ("phases".to_string(), phases),
        ("counters".to_string(), counters),
        ("gauges".to_string(), gauges),
        ("histograms".to_string(), histograms),
    ]);
    Json::Obj(fields)
}

/// Renders a snapshot in Prometheus text exposition format. Metric names
/// are sanitized (non-alphanumeric characters become `_`); every family
/// gets `# HELP` and `# TYPE` lines per the exposition format.
pub fn prometheus(snap: &MetricsSnapshot) -> String {
    prometheus_with_labels(snap, &[])
}

/// Like [`prometheus`], but attaches `labels` to every sample (e.g.
/// `[("rank", "3")]` for a per-rank scrape). Label values are escaped per
/// the exposition format: backslash, double quote, and newline become
/// `\\`, `\"`, and `\n`.
pub fn prometheus_with_labels(snap: &MetricsSnapshot, labels: &[(&str, &str)]) -> String {
    let base: String = snap
        .label
        .iter()
        .map(|v| ("job", v.as_str()))
        .chain(labels.iter().copied())
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",");
    // Renders `{extra,base}` (or `{base}`, `{extra}`, ``) around a sample.
    let label_set = |extra: &str| -> String {
        let joined = match (extra.is_empty(), base.is_empty()) {
            (true, true) => return String::new(),
            (false, true) => extra.to_string(),
            (true, false) => base.clone(),
            (false, false) => format!("{extra},{base}"),
        };
        format!("{{{joined}}}")
    };
    let mut out = String::new();
    out.push_str("# HELP sc_phase_seconds_total Wall seconds accumulated per step phase.\n");
    out.push_str("# TYPE sc_phase_seconds_total counter\n");
    for (phase, secs) in snap.phases.iter() {
        let ls = label_set(&format!("phase=\"{}\"", phase.name()));
        let _ = writeln!(out, "sc_phase_seconds_total{ls} {secs}");
    }
    for (name, value) in &snap.counters {
        let help = escape_help(name);
        let name = sanitize(name);
        let _ = writeln!(out, "# HELP {name} Counter '{help}' recorded by sc-obs.");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name}{} {value}", label_set(""));
    }
    for (name, value) in &snap.gauges {
        let help = escape_help(name);
        let name = sanitize(name);
        let _ = writeln!(out, "# HELP {name} Gauge '{help}' recorded by sc-obs.");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name}{} {value}", label_set(""));
    }
    for h in &snap.histograms {
        let help = escape_help(&h.name);
        let name = sanitize(&h.name);
        let _ = writeln!(out, "# HELP {name} Histogram '{help}' recorded by sc-obs.");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &count) in h.counts.iter().enumerate() {
            cumulative += count;
            let edge = match h.bounds.get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            let ls = label_set(&format!("le=\"{edge}\""));
            let _ = writeln!(out, "{name}_bucket{ls} {cumulative}");
        }
        let ls = label_set("");
        let _ = writeln!(out, "{name}_sum{ls} {}\n{name}_count{ls} {}", h.sum, h.count);
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Escapes a label value per the exposition format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text per the exposition format: `\` → `\\`, newline →
/// `\n` (quotes are legal in help text).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;
    use crate::registry::Registry;

    /// A registry with deterministic contents for golden-output tests.
    fn golden_registry() -> Registry {
        let reg = Registry::new();
        reg.record_phase(Phase::Bin, 0.5);
        reg.record_phase(Phase::Eval, 1.25);
        reg.counter("comm.bytes").add(4096);
        reg.counter("sim.steps").add(10);
        reg.gauge("sim.temperature").set(1.5);
        let h = reg.histogram("comm.step_bytes", &[100.0, 1000.0]);
        h.observe(50.0);
        h.observe(500.0);
        h.observe(5000.0);
        reg
    }

    #[test]
    fn human_table_golden() {
        let table = human_table(&golden_registry().snapshot());
        let expected = "\
metric                              value
phase.bin                           0.500000 s
phase.eval                          1.250000 s
comm.bytes                          4096
sim.steps                           10
sim.temperature                     1.5
comm.step_bytes                     n=3 sum=5550
  ≤ 100                             1
  ≤ 1000                            1
  > rest                            1
";
        assert_eq!(table, expected);
    }

    #[test]
    fn json_line_golden_and_parses_back() {
        let line = json_line(&golden_registry().snapshot());
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("phases").unwrap().get("bin_s").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("phases").unwrap().get("exchange_s").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("counters").unwrap().get("comm.bytes").unwrap().as_f64(), Some(4096.0));
        let h = &v.get("histograms").unwrap().as_array().unwrap()[0];
        assert_eq!(h.get("name").unwrap().as_str(), Some("comm.step_bytes"));
        assert_eq!(h.get("counts").unwrap().as_array().unwrap().len(), 3);
        // Counters come out sorted, so the line itself is deterministic.
        assert!(line.starts_with(r#"{"phases":{"bin_s":0.5,"#), "{line}");
    }

    #[test]
    fn prometheus_golden() {
        let text = prometheus(&golden_registry().snapshot());
        let expected = "\
# HELP sc_phase_seconds_total Wall seconds accumulated per step phase.
# TYPE sc_phase_seconds_total counter
sc_phase_seconds_total{phase=\"bin\"} 0.5
sc_phase_seconds_total{phase=\"exchange\"} 0
sc_phase_seconds_total{phase=\"enumerate\"} 0
sc_phase_seconds_total{phase=\"eval\"} 1.25
sc_phase_seconds_total{phase=\"reduce\"} 0
sc_phase_seconds_total{phase=\"migrate\"} 0
sc_phase_seconds_total{phase=\"integrate\"} 0
sc_phase_seconds_total{phase=\"compute\"} 0
# HELP comm_bytes Counter 'comm.bytes' recorded by sc-obs.
# TYPE comm_bytes counter
comm_bytes 4096
# HELP sim_steps Counter 'sim.steps' recorded by sc-obs.
# TYPE sim_steps counter
sim_steps 10
# HELP sim_temperature Gauge 'sim.temperature' recorded by sc-obs.
# TYPE sim_temperature gauge
sim_temperature 1.5
# HELP comm_step_bytes Histogram 'comm.step_bytes' recorded by sc-obs.
# TYPE comm_step_bytes histogram
comm_step_bytes_bucket{le=\"100\"} 1
comm_step_bytes_bucket{le=\"1000\"} 2
comm_step_bytes_bucket{le=\"+Inf\"} 3
comm_step_bytes_sum 5550
comm_step_bytes_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn labeled_snapshot_flows_through_every_exporter() {
        let reg = Registry::labeled("job-3");
        reg.counter("sim.steps").add(2);
        let snap = reg.snapshot();
        let table = human_table(&snap);
        assert!(table.contains("job                                 job-3"), "{table}");
        let line = json_line(&snap);
        assert!(line.starts_with(r#"{"job":"job-3","phases":"#), "{line}");
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("job").unwrap().as_str(), Some("job-3"));
        let text = prometheus(&snap);
        assert!(text.contains("sim_steps{job=\"job-3\"} 2"), "{text}");
        // Extra labels compose after the job label.
        let text = prometheus_with_labels(&snap, &[("rank", "1")]);
        assert!(text.contains("sim_steps{job=\"job-3\",rank=\"1\"} 2"), "{text}");
    }

    #[test]
    fn prometheus_escapes_label_values_golden() {
        let reg = Registry::new();
        reg.counter("sim.steps").add(3);
        let h = reg.histogram("lat", &[1.0]);
        h.observe(0.5);
        // A hostile label value: backslash, double quote, and a newline.
        let text = prometheus_with_labels(&reg.snapshot(), &[("run id", "a\\b\"quoted\"\nline2")]);
        let expected = "\
# HELP sc_phase_seconds_total Wall seconds accumulated per step phase.
# TYPE sc_phase_seconds_total counter
sc_phase_seconds_total{phase=\"bin\",run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 0
sc_phase_seconds_total{phase=\"exchange\",run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 0
sc_phase_seconds_total{phase=\"enumerate\",run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 0
sc_phase_seconds_total{phase=\"eval\",run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 0
sc_phase_seconds_total{phase=\"reduce\",run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 0
sc_phase_seconds_total{phase=\"migrate\",run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 0
sc_phase_seconds_total{phase=\"integrate\",run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 0
sc_phase_seconds_total{phase=\"compute\",run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 0
# HELP sim_steps Counter 'sim.steps' recorded by sc-obs.
# TYPE sim_steps counter
sim_steps{run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 3
# HELP lat Histogram 'lat' recorded by sc-obs.
# TYPE lat histogram
lat_bucket{le=\"1\",run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 1
lat_bucket{le=\"+Inf\",run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 1
lat_sum{run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 0.5
lat_count{run_id=\"a\\\\b\\\"quoted\\\"\\nline2\"} 1
";
        assert_eq!(text, expected);
        // No raw newline may survive inside a sample line: every output
        // line must be a comment, a sample, or empty.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "malformed exposition line: {line:?}"
            );
        }
    }
}
