//! Property-based tests of the pattern algebra: the paper's §3 invariants
//! quantified over random paths, patterns, shifts, and lattice sizes.

use proptest::prelude::*;
use sc_core::ucp::{canonical_chain, single_path_chains, ucp_chains};
use sc_core::{
    generate_fs, import_volume_cubic, oc_shift, r_collapse, shift_collapse, theory, Path, Pattern,
};
use sc_geom::IVec3;

fn ivec(range: std::ops::RangeInclusive<i32>) -> impl Strategy<Value = IVec3> {
    let r = range;
    (r.clone(), r.clone(), r).prop_map(|(x, y, z)| IVec3::new(x, y, z))
}

/// A random path of order n with offsets in [-3, 3]³ (not necessarily a
/// neighbour walk — the algebra holds for any path).
fn path(n: usize) -> impl Strategy<Value = Path> {
    proptest::collection::vec(ivec(-3..=3), n).prop_map(Path::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// σ is translation-invariant and reverses under inversion:
    /// σ(p⁻¹) = reverse(−σ(p)).
    #[test]
    fn sigma_algebra(p in path(4), d in ivec(-6..=6)) {
        prop_assert_eq!(p.sigma(), p.shifted(d).sigma());
        let mut rev_neg: Vec<IVec3> = p.sigma().into_iter().map(|v| -v).collect();
        rev_neg.reverse();
        prop_assert_eq!(p.inverse().sigma(), rev_neg);
    }

    /// Theorem 1 over random paths, shifts, and lattice sizes.
    #[test]
    fn shift_invariance(p in path(3), d in ivec(-7..=7), l in 4i32..7) {
        let dims = IVec3::splat(l);
        prop_assert_eq!(
            single_path_chains(dims, &p),
            single_path_chains(dims, &p.shifted(d))
        );
    }

    /// The reflective twin is an involution and produces the same chains.
    #[test]
    fn twin_involution(p in path(3)) {
        let t = p.reflective_twin();
        prop_assert_eq!(t.reflective_twin().sigma(), p.sigma());
        prop_assert!(p.is_equivalent(&t));
        let dims = IVec3::splat(5);
        prop_assert_eq!(single_path_chains(dims, &p), single_path_chains(dims, &t));
    }

    /// Octant compression never changes σ, always lands in the first
    /// octant, and is idempotent.
    #[test]
    fn octant_compression_properties(p in path(4)) {
        let oc = p.octant_compressed();
        prop_assert_eq!(oc.sigma(), p.sigma());
        prop_assert!(oc.offsets().iter().all(|v| v.in_first_octant()));
        prop_assert_eq!(oc.octant_compressed(), oc);
    }

    /// For whole patterns: OC-SHIFT preserves the generated chain set
    /// (Lemma 2), R-COLLAPSE preserves it too (Lemma 4).
    #[test]
    fn pipeline_stages_preserve_chains(paths in proptest::collection::vec(path(3), 1..12)) {
        let pat = Pattern::new(paths);
        let dims = IVec3::splat(5);
        let base = ucp_chains(dims, &pat);
        prop_assert_eq!(&ucp_chains(dims, &oc_shift(&pat)), &base);
        prop_assert_eq!(&ucp_chains(dims, &r_collapse(&pat)), &base);
        prop_assert_eq!(&ucp_chains(dims, &r_collapse(&oc_shift(&pat))), &base);
    }

    /// R-COLLAPSE never grows a pattern and removes at most half (+ self-
    /// reflective remainder).
    #[test]
    fn collapse_bounds(paths in proptest::collection::vec(path(3), 1..16)) {
        let pat = Pattern::new(paths);
        let rc = r_collapse(&pat);
        prop_assert!(rc.len() <= pat.len());
        prop_assert!(rc.len() * 2 > pat.len() - pat.self_reflective_count());
    }

    /// Canonical chains: reversal-invariant and idempotent.
    #[test]
    fn canonical_chain_props(chain in proptest::collection::vec(ivec(0..=4), 2..5)) {
        let mut rev = chain.clone();
        rev.reverse();
        let a = canonical_chain(chain);
        let b = canonical_chain(rev);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(canonical_chain(a.clone()), a);
    }

    /// Import volume: monotone in domain size and in n; SC matches Eq. 33.
    #[test]
    fn import_volume_monotonicity(l in 1u32..5) {
        for n in 2..=3usize {
            let sc = shift_collapse(n);
            let v_l = import_volume_cubic(l, &sc);
            let v_l1 = import_volume_cubic(l + 1, &sc);
            prop_assert!(v_l1 > v_l);
            prop_assert_eq!(v_l, theory::sc_import_volume(l as u64, n));
            // FS dominates SC for every l and n.
            prop_assert!(import_volume_cubic(l, &generate_fs(n)) > v_l);
        }
    }
}
