//! ASCII rendering of pattern coverage — the paper's Figs. 5–6 in text
//! form, for docs, examples, and debugging new patterns.

use crate::Pattern;
use sc_geom::IVec3;
use std::collections::BTreeSet;
use std::fmt::Write;

/// Renders the z-slices of a pattern's cell coverage around the base cell.
///
/// Legend: `O` the base cell (when covered), `#` a covered cell, `.` an
/// uncovered cell inside the bounding box. Slices are separated by blank
/// lines and labelled with their z offset, lowest z first; within a slice,
/// y grows upward and x to the right (the paper's figure convention).
///
/// ```
/// use sc_core::{eighth_shell, coverage_ascii};
/// let art = coverage_ascii(&eighth_shell());
/// // The eighth shell covers exactly the first octant: a 2×2 block in
/// // both z-slices, anchored at the base cell.
/// assert!(art.contains('O'));
/// assert_eq!(art.matches('#').count(), 7);
/// ```
pub fn coverage_ascii(pattern: &Pattern) -> String {
    let cov: BTreeSet<IVec3> = pattern.cell_coverage().into_iter().collect();
    let (lo, hi) = pattern.coverage_bounds();
    let mut out = String::new();
    for z in lo.z..=hi.z {
        writeln!(out, "z = {z:+}").expect("write to string");
        for y in (lo.y..=hi.y).rev() {
            for x in lo.x..=hi.x {
                let q = IVec3::new(x, y, z);
                let c = if q == IVec3::ZERO && cov.contains(&q) {
                    'O'
                } else if cov.contains(&q) {
                    '#'
                } else {
                    '.'
                };
                out.push(c);
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// One-line coverage summary: footprint, bounds, and octant flag.
pub fn coverage_summary(pattern: &Pattern) -> String {
    let (lo, hi) = pattern.coverage_bounds();
    format!(
        "n = {}, |Ψ| = {}, footprint = {} cells in [{}..{}]³{}",
        pattern.n(),
        pattern.len(),
        pattern.footprint(),
        lo.x.min(lo.y).min(lo.z),
        hi.x.max(hi.y).max(hi.z),
        if pattern.is_first_octant() { ", first octant" } else { "" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eighth_shell, full_shell, shift_collapse};

    #[test]
    fn full_shell_renders_three_full_slices() {
        let art = coverage_ascii(&full_shell());
        // 27 covered cells: 26 '#' + the base 'O'.
        assert_eq!(art.matches('#').count(), 26);
        assert_eq!(art.matches('O').count(), 1);
        assert_eq!(art.matches('.').count(), 0);
        assert!(art.contains("z = -1") && art.contains("z = +1"));
    }

    #[test]
    fn eighth_shell_renders_first_octant_block() {
        let art = coverage_ascii(&eighth_shell());
        assert_eq!(art.matches('#').count(), 7);
        assert_eq!(art.matches('O').count(), 1);
        // Bounding box is exactly the octant — no uncovered filler.
        assert_eq!(art.matches('.').count(), 0);
        assert!(!art.contains("z = -1"));
    }

    #[test]
    fn sc3_covers_the_27_cell_octant() {
        let art = coverage_ascii(&shift_collapse(3));
        assert_eq!(art.matches('#').count() + art.matches('O').count(), 27);
        assert!(art.contains("z = +2"));
    }

    #[test]
    fn summary_mentions_octant() {
        let s = coverage_summary(&shift_collapse(3));
        assert!(s.contains("first octant"));
        assert!(s.contains("|Ψ| = 378"));
        let f = coverage_summary(&full_shell());
        assert!(!f.contains("first octant"));
    }
}
