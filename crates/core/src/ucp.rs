//! Abstract (cell-chain level) UCP: the paper's force-set machinery with
//! cells as the atoms of discourse.
//!
//! The invariance theorems (Theorem 1, Lemma 3) quantify over *all* atom
//! configurations, which is equivalent to comparing the multisets of cell
//! chains a pattern generates. This module computes those chain sets for a
//! periodic cell lattice, giving executable statements of the paper's proofs
//! that the test suite checks directly. The `sc-md` crate reuses the same
//! logic with real atoms.

use crate::{Path, Pattern};
use sc_geom::IVec3;
use std::collections::{HashMap, HashSet};

/// An absolute, periodic-wrapped cell chain `(c0, …, c_{n-1})` — the cell
/// part of an n-tuple.
pub type Chain = Vec<IVec3>;

/// Canonical representative of an *undirected* chain: the lexicographic
/// minimum of the chain and its reversal. Undirectionality mirrors the
/// reflective equivalence of n-tuples (paper §2.1): `(r0…r_{n-1})` and
/// `(r_{n-1}…r0)` denote the same interaction.
pub fn canonical_chain(mut chain: Chain) -> Chain {
    let mut rev: Chain = chain.clone();
    rev.reverse();
    if rev < chain {
        chain = rev;
    }
    chain
}

/// Generates the chain for `(q, p)` on a periodic lattice of `dims` cells:
/// `(c((q+v0) % dims), …)`.
pub fn chain_of(q: IVec3, p: &Path, dims: IVec3) -> Chain {
    p.offsets().iter().map(|&v| (q + v).rem_euclid(dims)).collect()
}

/// The set of undirected chains `UCP(Ω, Ψ)` generates on a periodic lattice
/// of `dims` cells — the abstract force set.
pub fn ucp_chains(dims: IVec3, pattern: &Pattern) -> HashSet<Chain> {
    let mut out = HashSet::new();
    for q in IVec3::box_iter(IVec3::ZERO, dims - IVec3::splat(1)) {
        for p in pattern.iter() {
            out.insert(canonical_chain(chain_of(q, p, dims)));
        }
    }
    out
}

/// Like [`ucp_chains`] but counts how many `(cell, path)` applications
/// generate each undirected chain. Full shell generates every chain twice
/// (its reflective redundancy); shift-collapse generates each exactly once —
/// which is precisely the search-cost halving of Eq. 29.
pub fn ucp_chain_multiset(dims: IVec3, pattern: &Pattern) -> HashMap<Chain, u32> {
    let mut out: HashMap<Chain, u32> = HashMap::new();
    for q in IVec3::box_iter(IVec3::ZERO, dims - IVec3::splat(1)) {
        for p in pattern.iter() {
            *out.entry(canonical_chain(chain_of(q, p, dims))).or_insert(0) += 1;
        }
    }
    out
}

/// The abstract force set of a single path — used to state Theorem 1 and
/// Lemma 3 as executable assertions.
pub fn single_path_chains(dims: IVec3, p: &Path) -> HashSet<Chain> {
    ucp_chains(dims, &Pattern::new(vec![p.clone()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_fs, shift_collapse};

    fn p(offsets: &[[i32; 3]]) -> Path {
        Path::new(offsets.iter().map(|&a| IVec3::from_array(a)).collect::<Vec<_>>())
    }

    #[test]
    fn canonical_chain_picks_lexicographic_min() {
        let a = vec![IVec3::new(1, 0, 0), IVec3::new(0, 0, 0)];
        let c = canonical_chain(a);
        assert_eq!(c, vec![IVec3::new(0, 0, 0), IVec3::new(1, 0, 0)]);
        // Canonicalizing is idempotent.
        assert_eq!(canonical_chain(c.clone()), c);
    }

    #[test]
    fn theorem1_path_shift_invariance() {
        // UCP(Ω, {p+Δ}) = UCP(Ω, {p}) for arbitrary Δ.
        let dims = IVec3::splat(4);
        let path = p(&[[0, 0, 0], [1, 0, 0], [1, 1, 1]]);
        for delta in [IVec3::new(1, 0, 0), IVec3::new(-2, 3, 5), IVec3::new(7, -7, 0)] {
            let shifted = path.shifted(delta);
            assert_eq!(
                single_path_chains(dims, &path),
                single_path_chains(dims, &shifted),
                "Δ = {delta}"
            );
        }
    }

    #[test]
    fn lemma3_reflective_invariance() {
        // σ(p') = σ(p⁻¹) ⇒ UCP(Ω, {p'}) = UCP(Ω, {p}).
        let dims = IVec3::splat(5);
        let path = p(&[[0, 0, 0], [1, 1, 0], [0, 1, 1]]);
        let twin = path.reflective_twin();
        assert_eq!(twin.sigma(), path.inverse().sigma());
        assert_eq!(single_path_chains(dims, &path), single_path_chains(dims, &twin));
    }

    #[test]
    fn inequivalent_paths_generate_different_sets() {
        let dims = IVec3::splat(5);
        let a = p(&[[0, 0, 0], [1, 0, 0], [2, 0, 0]]);
        let b = p(&[[0, 0, 0], [1, 0, 0], [1, 1, 0]]);
        assert!(!a.is_equivalent(&b));
        assert_ne!(single_path_chains(dims, &a), single_path_chains(dims, &b));
    }

    #[test]
    fn sc_and_fs_generate_identical_chain_sets() {
        // Theorem 2 consequence: the SC pattern loses nothing relative to FS.
        for n in 2..=3 {
            let dims = IVec3::splat(4);
            let fs = ucp_chains(dims, &generate_fs(n));
            let sc = ucp_chains(dims, &shift_collapse(n));
            assert_eq!(fs, sc, "n = {n}");
        }
    }

    #[test]
    fn fs_generates_chains_twice_sc_once() {
        let dims = IVec3::splat(4);
        let n = 2;
        let fs = ucp_chain_multiset(dims, &generate_fs(n));
        let sc = ucp_chain_multiset(dims, &shift_collapse(n));
        // Every chain: FS multiplicity 2, SC multiplicity 1 — except chains
        // that are their own reflection at the cell level (e.g. both atoms
        // in one cell), where FS generates once via the self path.
        for (chain, &m_sc) in &sc {
            let m_fs = fs[chain];
            let self_reflected = {
                let mut r = chain.clone();
                r.reverse();
                r == *chain
            };
            if self_reflected {
                assert_eq!(m_sc, 1, "chain {chain:?}");
                assert_eq!(m_fs, 1, "chain {chain:?}");
            } else {
                assert_eq!(m_sc, 1, "chain {chain:?}");
                assert_eq!(m_fs, 2, "chain {chain:?}");
            }
        }
    }

    #[test]
    fn chain_of_wraps_periodically() {
        let dims = IVec3::splat(3);
        let path = p(&[[0, 0, 0], [1, 1, 1]]);
        let chain = chain_of(IVec3::new(2, 2, 2), &path, dims);
        assert_eq!(chain, vec![IVec3::new(2, 2, 2), IVec3::ZERO]);
    }
}
