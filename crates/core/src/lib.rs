//! # sc-core — computation-pattern algebra and the shift-collapse algorithm
//!
//! This crate implements the primary contribution of
//!
//! > M. Kunaseth, R. K. Kalia, A. Nakano, K. Nomura, P. Vashishta,
//! > *"A Scalable Parallel Algorithm for Dynamic Range-Limited n-Tuple
//! > Computation in Many-Body Molecular Dynamics Simulation"*, SC'13.
//!
//! ## The algebra (paper §3.1)
//!
//! Cell-based MD divides the simulation volume into a lattice of cells of
//! edge ≥ the interaction cutoff. A **computation path** for n-tuple
//! computation is a list of n cell offsets `p = (v0, …, v_{n-1}) ∈ Lⁿ`
//! ([`Path`]); a **computation pattern** `Ψ = {p}` is a set of paths
//! ([`Pattern`]). Applying a pattern to every cell `c(q)` of a cell domain Ω
//! generates the **force set**
//!
//! ```text
//! S = UCP(Ω, Ψ) = ⋃_{c(q) ∈ Ω} Scell(c(q), Ψ),
//! Scell(c(q), Ψ) = { (r0…r_{n-1}) | ∀p ∈ Ψ, ∀k: r_k ∈ c(q + v_k) }
//! ```
//!
//! (the paper's Eqs. 9–10). A pattern is **n-complete** when the force set
//! bounds `Γ*(n)`, the set of all chain-cutoff n-tuples. The [`ucp`] module
//! implements this machinery at the *cell-chain* level (abstract atoms), which
//! is what the paper's invariance proofs quantify over; the `sc-md` crate
//! instantiates it over real atoms.
//!
//! ## The shift-collapse algorithm (paper §3.2)
//!
//! [`shift_collapse`] = [`generate_fs`] → [`oc_shift`] → [`r_collapse`]:
//!
//! 1. **GENERATE-FS(n)** enumerates all `27^{n-1}` nearest-neighbour walks of
//!    length n starting at the origin cell — complete by construction
//!    (Lemma 1).
//! 2. **OC-SHIFT** translates every path so its bounding-box corner sits at
//!    the origin, compressing the pattern's cell coverage into the first
//!    octant `[0, n-1]³` (path-shift invariance, Theorem 1). This generalizes
//!    the eighth-shell import-volume trick to any n.
//! 3. **R-COLLAPSE** deletes one path of every reflective twin pair
//!    `σ(p') = σ(p⁻¹)` (reflective invariance, Lemma 3; twin uniqueness,
//!    Lemma 6). This generalizes the half-shell redundancy removal.
//!
//! For n = 2 the result *is* the eighth-shell method; [`half_shell`] and
//! [`eighth_shell`] are provided as the classical special cases.
//!
//! ## Theory (paper §4)
//!
//! The [`theory`] module carries the closed-form counts — `|Ψ_FS| = 27^{n-1}`
//! (Eq. 25), the self-reflective path count (Eq. 27), `|Ψ_SC|` (Eq. 29), and
//! the SC import volume `(l+n-1)³ − l³` (Eq. 33) — all of which are verified
//! against the constructive algorithms in this crate's tests.
//!
//! Note on Eq. 27: the published text renders the self-reflective count as
//! `27^{⌈(n+1)/2⌉-1}`, which evaluates to 27 at n = 2 and contradicts the
//! paper's own `|Ψ_HS| = 14 = (27+1)/2`. Deriving it from the palindromic
//! constraint `v_k = v_{n-1-k}` gives `27^{⌊(n-1)/2⌋}` (1 at n = 2, 27 at
//! n = 3 and 4, 729 at n = 5 …), which reproduces every count the paper
//! states; we implement that and flag the published exponent as a typo.

#![warn(missing_docs)]

mod complete;
mod coverage;
mod generate;
mod path;
mod pattern;
mod reach;
pub mod theory;
pub mod ucp;
mod viz;

pub use complete::{chain_complete, chain_complete_reach, missing_chains};
pub use coverage::{domain_import_cells, import_volume_cubic, neighbor_rank_offsets};
pub use generate::{
    eighth_shell, full_shell, generate_fs, half_shell, oc_shift, r_collapse, shift_collapse,
    PatternKind,
};
pub use path::Path;
pub use pattern::Pattern;
pub use reach::{generate_fs_reach, reach_theory, shift_collapse_reach};
pub use viz::{coverage_ascii, coverage_summary};
