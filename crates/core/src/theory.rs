//! Closed-form counts from the paper's §4 analysis.
//!
//! Every formula here is checked against the constructive algorithms in
//! `generate.rs` by tests, so the theory and the implementation cannot
//! silently drift apart.

/// `|Ψ_FS(n)| = 27^{n-1}` (Eq. 25): each of the n−1 steps of a full-shell
/// walk picks one of the 27 offsets in `{-1,0,1}³`.
pub fn fs_path_count(n: usize) -> u64 {
    assert!(n >= 2);
    27u64.pow(n as u32 - 1)
}

/// The number of self-reflective (non-collapsible) paths in `Ψ_FS(n)`
/// (Eq. 27, with the exponent corrected to `⌊(n−1)/2⌋` — see the crate-level
/// docs for why the published `⌈(n+1)/2⌉−1` is a typo).
///
/// Derivation: `p = p⁻¹` forces the palindrome `v_k = v_{n-1-k}`; with
/// `v0 = 0` fixed and the walk constraint automatically satisfied by
/// symmetry, `⌊(n−1)/2⌋` offsets remain free, each with 27 choices:
///
/// * n = 2 → 1 (only the in-cell pair path),
/// * n = 3 → 27 (out-and-back triplets),
/// * n = 4 → 27, n = 5 → 729, …
pub fn self_reflective_count(n: usize) -> u64 {
    assert!(n >= 2);
    27u64.pow(((n - 1) / 2) as u32)
}

/// `|Ψ_SC(n)| = (27^{n-1} + s(n)) / 2` where `s` is
/// [`self_reflective_count`] — equivalently Eq. 29's
/// `½(27^{n-1} − s) + s`: half of the collapsible paths plus all
/// non-collapsible ones.
///
/// * n = 2 → 14 (the half/eighth-shell count),
/// * n = 3 → 378, n = 4 → 9 855, n = 5 → 266 085.
pub fn sc_path_count(n: usize) -> u64 {
    (fs_path_count(n) + self_reflective_count(n)) / 2
}

/// The asymptotic search-cost ratio `|Ψ_FS| / |Ψ_SC| → 2` the paper's Fig. 7
/// measures (≈ 1.93 at n = 3; the measured force-set ratio in the paper is
/// ≈ 2.13 because FS also retains reflective tuple duplicates).
pub fn fs_over_sc_ratio(n: usize) -> f64 {
    fs_path_count(n) as f64 / sc_path_count(n) as f64
}

/// SC import volume for a cubic cell domain of edge `l` cells (Eq. 33):
/// `Vω(Ω, Ψ_SC(n)) = (l+n−1)³ − l³`. First-octant coverage imports an
/// (n−1)-cell-thick upper corner shell.
pub fn sc_import_volume(l: u64, n: usize) -> u64 {
    assert!(n >= 2);
    let k = (n - 1) as u64;
    (l + k).pow(3) - l.pow(3)
}

/// Full-shell import volume for a cubic domain of edge `l` cells: coverage
/// extends (n−1) cells in *both* directions per axis, so
/// `Vω(Ω, Ψ_FS(n)) = (l+2(n−1))³ − l³`. The paper's Hybrid-MD baseline has
/// the same import volume as FS (§5 preamble).
pub fn fs_import_volume(l: u64, n: usize) -> u64 {
    assert!(n >= 2);
    let k = 2 * (n - 1) as u64;
    (l + k).pow(3) - l.pow(3)
}

/// Half-shell pair-computation (n = 2) import volume for a cubic domain of
/// edge `l` cells, computed exactly.
///
/// HS keeps the 13 lexicographically-positive pair directions
/// `D = {d ∈ {-1,0,1}³ : d > 0 lex}`. The import region is the Minkowski sum
/// `(R ⊕ D) \ R`, which is **not** a clean half shell for multi-cell domains:
/// a diagonal direction like `(1,-1,0)` drags in cells on the −y side of the
/// domain. There is no tidy closed form, so we count directly — the point of
/// the eighth-shell/SC octant compression is precisely that its import region
/// *does* have the closed form of Eq. 33.
pub fn hs_import_volume(l: u64) -> u64 {
    let li = l as i64;
    let lex_positive = |d: [i64; 3]| -> bool {
        if d[0] != 0 {
            d[0] > 0
        } else if d[1] != 0 {
            d[1] > 0
        } else {
            d[2] > 0
        }
    };
    let dirs: Vec<[i64; 3]> = {
        let mut v = vec![];
        for x in -1..=1i64 {
            for y in -1..=1i64 {
                for z in -1..=1i64 {
                    if (x, y, z) != (0, 0, 0) && lex_positive([x, y, z]) {
                        v.push([x, y, z]);
                    }
                }
            }
        }
        v
    };
    let in_region = |c: [i64; 3]| c.iter().all(|&x| x >= 0 && x < li);
    let mut count = 0u64;
    for cx in -1..=li {
        for cy in -1..=li {
            for cz in -1..=li {
                let c = [cx, cy, cz];
                if in_region(c) {
                    continue;
                }
                let imported =
                    dirs.iter().any(|d| in_region([c[0] - d[0], c[1] - d[1], c[2] - d[2]]));
                if imported {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Midpoint-method import volume for a cubic domain of `l` cells (Bowers,
/// Dror & Shaw 2006; the paper's §6 compares SC against it).
///
/// Under midpoint assignment a tuple is computed by the rank owning its
/// midpoint, so every atom of an n-tuple lies within `(n−1)·r_cut/2` of the
/// owning domain — an import halo of `(n−1)/2` cells on *all six* sides:
/// `(l + n − 1)³ − l³`, numerically **equal** to the SC volume of Eq. 33
/// but split across 26 neighbour directions instead of SC's 7-neighbour
/// first octant. SC additionally removes the reflective search redundancy,
/// which is the §6 claim that "the SC algorithm improves the midpoint
/// method by further eliminating redundant searches".
pub fn midpoint_import_volume(l: u64, n: usize) -> u64 {
    assert!(n >= 2);
    let k = (n - 1) as u64;
    (l + k).pow(3) - l.pow(3)
}

/// Search cost per cell (in candidate tuples) for a pattern of size
/// `pattern_len`, assuming uniform density `rho` atoms per cell: each of the
/// n cells along a path contributes a factor ρ (Lemma 5 gives the
/// proportionality `T_UCP ∝ |Ψ|`).
pub fn search_cost_per_cell(pattern_len: u64, n: usize, rho: f64) -> f64 {
    pattern_len as f64 * rho.powi(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_counts() {
        assert_eq!(fs_path_count(2), 27);
        assert_eq!(fs_path_count(3), 729);
        assert_eq!(fs_path_count(4), 19_683);
        assert_eq!(fs_path_count(5), 531_441);
    }

    #[test]
    fn self_reflective_counts() {
        assert_eq!(self_reflective_count(2), 1);
        assert_eq!(self_reflective_count(3), 27);
        assert_eq!(self_reflective_count(4), 27);
        assert_eq!(self_reflective_count(5), 729);
        assert_eq!(self_reflective_count(6), 729);
    }

    #[test]
    fn sc_counts() {
        assert_eq!(sc_path_count(2), 14); // = |Ψ_HS|, paper §4.3.2
        assert_eq!(sc_path_count(3), 378);
        assert_eq!(sc_path_count(4), 9_855);
        assert_eq!(sc_path_count(5), 266_085);
    }

    #[test]
    fn ratio_approaches_two() {
        assert!((fs_over_sc_ratio(2) - 27.0 / 14.0).abs() < 1e-12);
        assert!((fs_over_sc_ratio(3) - 729.0 / 378.0).abs() < 1e-12);
        assert!(fs_over_sc_ratio(5) > 1.99);
        assert!(fs_over_sc_ratio(5) < 2.0);
    }

    #[test]
    fn import_volumes() {
        // Eq. 33 at n = 2 is the eighth-shell import: (l+1)³ − l³.
        assert_eq!(sc_import_volume(4, 2), 125 - 64);
        assert_eq!(sc_import_volume(4, 3), 216 - 64);
        // FS imports both directions.
        assert_eq!(fs_import_volume(4, 2), 216 - 64);
        assert_eq!(fs_import_volume(4, 3), 512 - 64);
        // SC import is strictly smaller than FS for all n ≥ 2.
        for n in 2..6 {
            for l in 1..10 {
                assert!(sc_import_volume(l, n) < fs_import_volume(l, n));
            }
        }
    }

    #[test]
    fn hs_import_between_sc_and_fs() {
        for l in 1..8u64 {
            let hs = hs_import_volume(l);
            assert!(hs <= fs_import_volume(l, 2), "l={l}");
            assert!(hs >= sc_import_volume(l, 2), "l={l}");
        }
    }

    #[test]
    fn hs_import_pair_case() {
        // l = 1: single cell imports 13 neighbours under HS,
        // 26 under FS, 7 under SC/ES — the classical counts.
        assert_eq!(hs_import_volume(1), 13);
        assert_eq!(fs_import_volume(1, 2), 26);
        assert_eq!(sc_import_volume(1, 2), 7);
    }

    #[test]
    fn midpoint_equals_sc_volume_but_two_sided() {
        for n in 2..=4 {
            for l in 1..=5 {
                assert_eq!(midpoint_import_volume(l, n), sc_import_volume(l, n));
            }
        }
        // The geometric difference is directional: SC's halo fits in the
        // first octant (7 neighbour ranks, 3 hops), midpoint's wraps the
        // whole domain (26 neighbours, 6 hops).
    }

    #[test]
    fn search_cost_formula() {
        assert_eq!(search_cost_per_cell(27, 2, 2.0), 27.0 * 4.0);
        assert_eq!(search_cost_per_cell(378, 3, 10.0), 378.0 * 1000.0);
    }
}
