//! The shift-collapse algorithm and the classical shell patterns.
//!
//! `SC(n) = R-COLLAPSE(OC-SHIFT(GENERATE-FS(n)))` (paper Tables 2–5), plus
//! the pair-computation special cases of §4.3: full shell (27 paths), half
//! shell (14), and eighth shell (14 paths compressed into the first octant).

use crate::{Path, Pattern};
use sc_geom::IVec3;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The 27 nearest-neighbour offsets `{-1,0,1}³`, in lexicographic order.
fn neighbor_offsets() -> Vec<IVec3> {
    IVec3::box_iter(IVec3::splat(-1), IVec3::splat(1)).collect()
}

/// `GENERATE-FS(n)` (paper Table 3): the full-shell pattern — every walk
/// `(v0, …, v_{n-1})` with `v0 = 0` and `v_{k+1}` a (26+self)-neighbour of
/// `v_k`. Contains exactly `27^{n-1}` paths and is n-complete by construction
/// (Lemma 1).
///
/// # Panics
/// Panics if `n < 2` or if `27^{n-1}` would overflow practical memory
/// (`n > 7`).
pub fn generate_fs(n: usize) -> Pattern {
    assert!((2..=7).contains(&n), "GENERATE-FS supports 2 ≤ n ≤ 7, got {n}");
    let nbrs = neighbor_offsets();
    let mut walks: Vec<Vec<IVec3>> = vec![vec![IVec3::ZERO]];
    for _ in 1..n {
        let mut next = Vec::with_capacity(walks.len() * 27);
        for w in &walks {
            let last = *w.last().expect("walks are non-empty");
            for &d in &nbrs {
                let mut w2 = w.clone();
                w2.push(last + d);
                next.push(w2);
            }
        }
        walks = next;
    }
    Pattern::new(walks.into_iter().map(Path::new).collect())
}

/// `OC-SHIFT` (paper Table 4): octant compression. Every path is translated
/// so its bounding-box minimum corner sits at the origin; by path-shift
/// invariance (Theorem 1) the generated force set is unchanged, but the
/// pattern's cell coverage collapses into the first octant `[0, n-1]³`,
/// which is what reduces the parallel import volume to Eq. 33.
pub fn oc_shift(pattern: &Pattern) -> Pattern {
    Pattern::new(pattern.iter().map(Path::octant_compressed).collect())
}

/// `R-COLLAPSE` (paper Table 5): removes one path of every reflective twin
/// pair `σ(p') = σ(p⁻¹)` (Lemma 3 proves twins generate identical force
/// sets; Lemma 6 proves each path has exactly one twin). Self-reflective
/// paths (`p` its own twin, Corollary 1) are kept.
///
/// The published pseudocode is the O(|Ψ|²) doubly-nested loop; we key a hash
/// map by the lexicographic minimum of `{σ(p), σ(p⁻¹)}`, which is the same
/// collapse in O(|Ψ|). Within each twin pair we keep the path whose σ is the
/// lexicographic *maximum* — for pairs this retains the upper (positive)
/// half-shell directions, matching the classical half-shell convention and
/// the paper's Fig. 6(b). Which twin is kept does not affect the force set
/// (Lemma 3) or any count; it only fixes a convention.
pub fn r_collapse(pattern: &Pattern) -> Pattern {
    // Index of the kept path per equivalence class, replaced when a path
    // with the canonical (σ = max) orientation shows up.
    let mut by_class: HashMap<Vec<IVec3>, usize> = HashMap::with_capacity(pattern.len());
    let mut kept: Vec<Path> = Vec::with_capacity(pattern.len() / 2 + 1);
    for p in pattern.iter() {
        let s = p.sigma();
        let r = p.inverse().sigma();
        let canonical = s >= r;
        let key = if s <= r { s } else { r };
        match by_class.get(&key) {
            None => {
                by_class.insert(key, kept.len());
                kept.push(p.clone());
            }
            Some(&i) => {
                if canonical {
                    kept[i] = p.clone();
                }
            }
        }
    }
    Pattern::new(kept)
}

/// The shift-collapse pattern `Ψ_SC(n)` (paper Table 2): full-shell
/// generation, octant compression, reflective collapse. n-complete
/// (Theorem 2), first-octant coverage, and roughly half the search cost of
/// full shell (Eq. 29).
pub fn shift_collapse(n: usize) -> Pattern {
    r_collapse(&oc_shift(&generate_fs(n)))
}

/// The full-shell pair pattern `Ψ_FS(2)` — 27 paths (paper §4.3.1). Alias of
/// `generate_fs(2)` for discoverability next to [`half_shell`] and
/// [`eighth_shell`].
pub fn full_shell() -> Pattern {
    generate_fs(2)
}

/// The half-shell pair pattern `Ψ_HS = R-COLLAPSE(Ψ_FS(2))` — 14 paths
/// (paper §4.3.2). Exploits Newton's third law to halve the pair search.
pub fn half_shell() -> Pattern {
    r_collapse(&generate_fs(2))
}

/// The eighth-shell pair pattern `Ψ_ES = OC-SHIFT(Ψ_HS)` — 14 paths whose
/// coverage is the 8-cell first octant (7 imported neighbour cells), the
/// minimum-import pair method of Bowers et al. (paper §4.3.3). Identical
/// force set to [`shift_collapse`]`(2)`.
pub fn eighth_shell() -> Pattern {
    oc_shift(&half_shell())
}

/// The cell-method family a simulation driver can pick from; maps each name
/// to its constructive pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Full shell: complete, redundant, widest import.
    FullShell,
    /// Half shell: pair-only classical redundancy removal (for n > 2 this is
    /// `R-COLLAPSE(FS(n))` without octant compression).
    HalfShell,
    /// Eighth shell / shift-collapse: redundancy-free, first-octant imports.
    ShiftCollapse,
}

impl PatternKind {
    /// Builds the pattern of this kind for tuple order n.
    pub fn build(self, n: usize) -> Pattern {
        match self {
            PatternKind::FullShell => generate_fs(n),
            PatternKind::HalfShell => r_collapse(&generate_fs(n)),
            PatternKind::ShiftCollapse => shift_collapse(n),
        }
    }

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            PatternKind::FullShell => "FS",
            PatternKind::HalfShell => "HS",
            PatternKind::ShiftCollapse => "SC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory;

    #[test]
    fn fs_counts_match_eq25() {
        for n in 2..=5 {
            let fs = generate_fs(n);
            assert_eq!(fs.len() as u64, theory::fs_path_count(n), "n={n}");
            assert_eq!(fs.n(), n);
            // Every FS path is an origin-anchored neighbour walk.
            assert!(fs.iter().all(|p| p.offset(0) == IVec3::ZERO && p.is_neighbor_walk()));
        }
    }

    #[test]
    fn fs_paths_are_distinct() {
        let fs = generate_fs(3);
        let set: std::collections::HashSet<_> = fs.iter().cloned().collect();
        assert_eq!(set.len(), fs.len());
    }

    #[test]
    fn oc_shift_preserves_sigma_and_count() {
        let fs = generate_fs(3);
        let oc = oc_shift(&fs);
        assert_eq!(oc.len(), fs.len());
        assert!(oc.is_first_octant());
        // Coverage fits inside [0, n-1]³ (paper §4.2).
        let (lo, hi) = oc.coverage_bounds();
        assert_eq!(lo, IVec3::ZERO);
        assert!(hi.linf_norm() <= 2);
        // σ preserved path-by-path.
        for (a, b) in fs.iter().zip(oc.iter()) {
            assert_eq!(a.sigma(), b.sigma());
        }
    }

    #[test]
    fn r_collapse_counts_match_eq29() {
        for n in 2..=5 {
            let sc = shift_collapse(n);
            assert_eq!(sc.len() as u64, theory::sc_path_count(n), "n={n}");
            // Self-reflective (non-collapsible) path count matches Eq. 27
            // (corrected exponent — see crate docs).
            assert_eq!(
                sc.self_reflective_count() as u64,
                theory::self_reflective_count(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn r_collapse_leaves_no_twins() {
        for n in 2..=3 {
            let sc = shift_collapse(n);
            for (i, p) in sc.iter().enumerate() {
                for (j, q) in sc.iter().enumerate() {
                    if i < j {
                        assert!(
                            !p.is_equivalent(q),
                            "paths {i} and {j} of SC({n}) are equivalent: {p} ~ {q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sc_covers_every_fs_equivalence_class() {
        // Every FS path must be equivalent to some retained SC path —
        // otherwise R-COLLAPSE dropped a class and completeness would break.
        for n in 2..=3 {
            let fs = generate_fs(n);
            let sc = shift_collapse(n);
            for p in fs.iter() {
                assert!(sc.iter().any(|q| q.is_equivalent(p)), "FS({n}) path {p} lost by SC");
            }
        }
    }

    #[test]
    fn classical_shell_sizes() {
        assert_eq!(full_shell().len(), 27);
        assert_eq!(half_shell().len(), 14);
        let es = eighth_shell();
        assert_eq!(es.len(), 14);
        assert!(es.is_first_octant());
        // ES coverage is the 8-cell first octant; 7 cells are imports.
        assert_eq!(es.footprint(), 8);
        assert_eq!(es.import_offsets().len(), 7);
    }

    #[test]
    fn es_equals_sc2_up_to_path_translation() {
        // §4.3.3: ES is the SC algorithm specialised to n = 2. The two
        // constructions may anchor paths differently, but the multiset of
        // equivalence classes must coincide.
        let es = eighth_shell().canonicalized();
        let sc2 = shift_collapse(2).canonicalized();
        assert_eq!(es.len(), sc2.len());
        for p in es.iter() {
            assert!(sc2.iter().any(|q| q.is_equivalent(p)));
        }
    }

    #[test]
    fn pattern_kind_roundtrip() {
        assert_eq!(PatternKind::FullShell.build(2).len(), 27);
        assert_eq!(PatternKind::HalfShell.build(2).len(), 14);
        assert_eq!(PatternKind::ShiftCollapse.build(2).len(), 14);
        assert_eq!(PatternKind::ShiftCollapse.name(), "SC");
    }

    #[test]
    fn hs_is_not_octant_compressed_but_es_is() {
        assert!(!half_shell().is_first_octant());
        assert!(eighth_shell().is_first_octant());
    }

    #[test]
    #[should_panic]
    fn n_below_2_rejected() {
        let _ = generate_fs(1);
    }
}
