//! Computation paths `p = (v0, …, v_{n-1})` and their algebra.

use sc_geom::IVec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An n-tuple computation path: a list of n cell offsets in the cell-index
/// lattice `L` (paper §3.1.2).
///
/// Applying a path to a base cell `c(q)` selects the cell chain
/// `(c(q+v0), …, c(q+v_{n-1}))`; the k-th atom of every generated tuple comes
/// from the k-th cell of that chain.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Path {
    v: Box<[IVec3]>,
}

impl Path {
    /// Creates a path from its offset vectors.
    ///
    /// # Panics
    /// Panics if fewer than two offsets are given (n ≥ 2 in every n-tuple
    /// computation the paper considers).
    pub fn new(offsets: impl Into<Vec<IVec3>>) -> Self {
        let v: Vec<IVec3> = offsets.into();
        assert!(v.len() >= 2, "a computation path needs n ≥ 2 offsets, got {}", v.len());
        Path { v: v.into_boxed_slice() }
    }

    /// The tuple order n (number of offsets).
    #[inline]
    pub fn n(&self) -> usize {
        self.v.len()
    }

    /// The offset vectors.
    #[inline]
    pub fn offsets(&self) -> &[IVec3] {
        &self.v
    }

    /// The k-th offset.
    #[inline]
    pub fn offset(&self, k: usize) -> IVec3 {
        self.v[k]
    }

    /// The inverse path `p⁻¹ = (v_{n-1}, …, v0)`.
    pub fn inverse(&self) -> Path {
        let mut v: Vec<IVec3> = self.v.to_vec();
        v.reverse();
        Path::new(v)
    }

    /// The differential representation
    /// `σ(p) = (v1 − v0, …, v_{n-1} − v_{n-2}) ∈ L^{n-1}`.
    ///
    /// Two paths generate the same force set iff their differentials are
    /// equal (translation, Theorem 1) or reverse-related (reflection,
    /// Lemma 3), so σ is the invariant the collapse step compares.
    pub fn sigma(&self) -> Vec<IVec3> {
        self.v.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Path shifting `p + Δ = (v0 + Δ, …, v_{n-1} + Δ)` (paper §3.2).
    pub fn shifted(&self, delta: IVec3) -> Path {
        Path::new(self.v.iter().map(|&v| v + delta).collect::<Vec<_>>())
    }

    /// Component-wise minimum corner of the path's bounding box.
    pub fn min_corner(&self) -> IVec3 {
        self.v.iter().copied().fold(self.v[0], IVec3::min)
    }

    /// Component-wise maximum corner of the path's bounding box.
    pub fn max_corner(&self) -> IVec3 {
        self.v.iter().copied().fold(self.v[0], IVec3::max)
    }

    /// Octant compression of a single path: shift so the bounding-box minimum
    /// corner lands on the origin, leaving every offset in the first octant.
    /// This is the per-path operation `OC-SHIFT` applies (Table 4); by
    /// Theorem 1 it leaves the generated force set unchanged.
    pub fn octant_compressed(&self) -> Path {
        self.shifted(-self.min_corner())
    }

    /// Whether consecutive offsets are nearest neighbours
    /// (`‖v_{k+1} − v_k‖_∞ ≤ 1`), the structural invariant of full-shell
    /// paths that makes them chain-complete (Lemma 1).
    pub fn is_neighbor_walk(&self) -> bool {
        self.v.windows(2).all(|w| (w[1] - w[0]).linf_norm() <= 1)
    }

    /// Whether the path is *self-reflective*: `σ(p) = σ(p⁻¹)`, i.e. the path
    /// is its own reflective twin (Corollary 1). Self-reflective paths are
    /// non-collapsible, and tuple enumeration must instead break the
    /// reflection symmetry per-tuple (by canonical atom ordering).
    pub fn is_self_reflective(&self) -> bool {
        self.sigma() == self.inverse().sigma()
    }

    /// The reflective path twin `RPT(p) = p⁻¹ − v_{n-1}` (Lemma 6): the
    /// unique *origin-anchored* path generating the same force set as `p`.
    /// For paths with `v0 = 0` (full-shell form), `RPT(p)` also has its first
    /// offset at the origin.
    pub fn reflective_twin(&self) -> Path {
        let last = self.v[self.v.len() - 1];
        self.inverse().shifted(-last)
    }

    /// Whether `other` generates the same force set as `self` on every cell
    /// domain: equal differentials (translation) or reflected differentials
    /// (reflection). This is the equivalence R-COLLAPSE tests (Table 5).
    pub fn is_equivalent(&self, other: &Path) -> bool {
        if self.n() != other.n() {
            return false;
        }
        let s = self.sigma();
        let o = other.sigma();
        s == o || o == self.inverse().sigma()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.v.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(offsets: &[[i32; 3]]) -> Path {
        Path::new(offsets.iter().map(|&a| IVec3::from_array(a)).collect::<Vec<_>>())
    }

    #[test]
    fn sigma_is_differences() {
        let path = p(&[[0, 0, 0], [1, 0, 0], [1, 1, 0]]);
        assert_eq!(path.sigma(), vec![IVec3::new(1, 0, 0), IVec3::new(0, 1, 0)]);
    }

    #[test]
    fn sigma_is_shift_invariant() {
        let path = p(&[[0, 0, 0], [1, -1, 0], [2, -1, 1]]);
        let shifted = path.shifted(IVec3::new(5, -3, 2));
        assert_eq!(path.sigma(), shifted.sigma());
        assert_ne!(path, shifted);
    }

    #[test]
    fn inverse_twice_is_identity() {
        let path = p(&[[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 1, 1]]);
        assert_eq!(path.inverse().inverse(), path);
    }

    #[test]
    fn octant_compression_lands_in_first_octant() {
        let path = p(&[[0, 0, 0], [-1, 1, 0], [-2, 0, -1]]);
        let oc = path.octant_compressed();
        assert!(oc.offsets().iter().all(|v| v.in_first_octant()));
        assert_eq!(oc.min_corner(), IVec3::ZERO);
        // Shifting preserves σ — the force set is unchanged (Theorem 1).
        assert_eq!(oc.sigma(), path.sigma());
    }

    #[test]
    fn octant_compression_is_idempotent() {
        let path = p(&[[0, 0, 0], [1, 1, 1]]);
        assert_eq!(path.octant_compressed(), path);
        let path2 = p(&[[0, 0, 0], [-1, -1, -1]]).octant_compressed();
        assert_eq!(path2, p(&[[1, 1, 1], [0, 0, 0]]));
        assert_eq!(path2.octant_compressed(), path2);
    }

    #[test]
    fn reflective_twin_matches_lemma6() {
        // RPT(p) = p⁻¹ − v_{n-1}: same force set, origin-anchored.
        let path = p(&[[0, 0, 0], [1, 0, 0], [1, 1, 0]]);
        let twin = path.reflective_twin();
        assert_eq!(twin.offset(0), IVec3::ZERO);
        // σ(twin) = σ(p⁻¹).
        assert_eq!(twin.sigma(), path.inverse().sigma());
        assert!(path.is_equivalent(&twin));
        // The twin's twin is the original.
        assert_eq!(twin.reflective_twin(), path);
    }

    #[test]
    fn self_reflective_paths() {
        // Pair in the same cell: p = (0, 0) is its own twin.
        assert!(p(&[[0, 0, 0], [0, 0, 0]]).is_self_reflective());
        // Out-and-back triplet.
        assert!(p(&[[0, 0, 0], [1, 0, 0], [0, 0, 0]]).is_self_reflective());
        // A generic straight pair is not.
        assert!(!p(&[[0, 0, 0], [1, 0, 0]]).is_self_reflective());
        // Self-reflective ⇒ RPT(p) = p (Corollary 1) for origin-anchored p.
        let s = p(&[[0, 0, 0], [1, 1, 0], [0, 0, 0]]);
        assert_eq!(s.reflective_twin(), s);
    }

    #[test]
    fn neighbor_walk_detection() {
        assert!(p(&[[0, 0, 0], [1, 1, 1], [0, 1, 2]]).is_neighbor_walk());
        assert!(!p(&[[0, 0, 0], [2, 0, 0]]).is_neighbor_walk());
    }

    #[test]
    fn equivalence_includes_translation_and_reflection() {
        let a = p(&[[0, 0, 0], [1, 0, 0], [1, 1, 0]]);
        let translated = a.shifted(IVec3::new(3, 3, 3));
        let reflected = a.reflective_twin().shifted(IVec3::new(-2, 0, 1));
        let different = p(&[[0, 0, 0], [0, 1, 0], [1, 1, 0]]);
        assert!(a.is_equivalent(&translated));
        assert!(a.is_equivalent(&reflected));
        assert!(!a.is_equivalent(&different));
        assert!(!a.is_equivalent(&p(&[[0, 0, 0], [1, 0, 0]])));
    }

    #[test]
    #[should_panic]
    fn single_offset_path_rejected() {
        let _ = Path::new(vec![IVec3::ZERO]);
    }
}
