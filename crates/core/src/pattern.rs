//! Computation patterns `Ψ = {p}` and their coverage geometry.

use crate::Path;
use sc_geom::IVec3;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A computation pattern: a set of computation paths of a common order n
/// (paper §3.1.2). The pattern plays the role a stencil plays in grid
/// computations — it is applied at every cell of the domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    n: usize,
    paths: Vec<Path>,
}

impl Pattern {
    /// Creates a pattern from paths.
    ///
    /// # Panics
    /// Panics if `paths` is empty or the paths disagree on n.
    pub fn new(paths: Vec<Path>) -> Self {
        assert!(!paths.is_empty(), "a pattern needs at least one path");
        let n = paths[0].n();
        assert!(
            paths.iter().all(|p| p.n() == n),
            "all paths in a pattern must share the same tuple order n"
        );
        Pattern { n, paths }
    }

    /// The tuple order n of every path in the pattern.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The number of paths `|Ψ|` — by Lemma 5 the n-tuple search cost is
    /// proportional to this.
    #[inline]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the pattern has no paths (never true for constructed patterns).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The paths.
    #[inline]
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Iterates over the paths.
    pub fn iter(&self) -> impl Iterator<Item = &Path> {
        self.paths.iter()
    }

    /// The cell coverage `Π(Ψ)` relative to the base cell: the set of cell
    /// offsets any path touches (paper §3.1.3). Sorted and deduplicated.
    pub fn cell_coverage(&self) -> Vec<IVec3> {
        let set: BTreeSet<IVec3> =
            self.paths.iter().flat_map(|p| p.offsets().iter().copied()).collect();
        set.into_iter().collect()
    }

    /// The cell footprint `|Π(Ψ)|` — the number of distinct cells needed to
    /// evaluate one cell's search space.
    pub fn footprint(&self) -> usize {
        self.cell_coverage().len()
    }

    /// The coverage offsets that are *not* the base cell itself — for a
    /// single-cell domain this is exactly what must be imported.
    pub fn import_offsets(&self) -> Vec<IVec3> {
        self.cell_coverage().into_iter().filter(|&v| v != IVec3::ZERO).collect()
    }

    /// Bounding box `[lo, hi]` (inclusive) of the coverage.
    pub fn coverage_bounds(&self) -> (IVec3, IVec3) {
        let mut lo = self.paths[0].offset(0);
        let mut hi = lo;
        for p in &self.paths {
            lo = lo.min(p.min_corner());
            hi = hi.max(p.max_corner());
        }
        (lo, hi)
    }

    /// Whether every path offset lies in the first octant — the invariant
    /// established by OC-SHIFT, which is what shrinks the parallel import
    /// volume to `(l+n-1)³ − l³`.
    pub fn is_first_octant(&self) -> bool {
        self.paths.iter().all(|p| p.offsets().iter().all(|v| v.in_first_octant()))
    }

    /// Returns the pattern with paths sorted lexicographically — a canonical
    /// form so that structurally equal patterns compare equal.
    pub fn canonicalized(mut self) -> Pattern {
        self.paths.sort();
        self.paths.dedup();
        self
    }

    /// Counts the self-reflective (non-collapsible) paths in the pattern.
    pub fn self_reflective_count(&self) -> usize {
        self.paths.iter().filter(|p| p.is_self_reflective()).count()
    }

    /// Estimated search cost per cell in units of tuples, assuming a uniform
    /// atom density of `rho` atoms per cell: `|Ψ| · ρⁿ` candidate tuples
    /// (each of the n cells on a path contributes a factor ρ; Lemma 5 states
    /// the proportionality to `|Ψ|`).
    pub fn search_cost_per_cell(&self, rho: f64) -> f64 {
        self.len() as f64 * rho.powi(self.n as i32)
    }
}

impl<'a> IntoIterator for &'a Pattern {
    type Item = &'a Path;
    type IntoIter = std::slice::Iter<'a, Path>;
    fn into_iter(self) -> Self::IntoIter {
        self.paths.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(offsets: &[[i32; 3]]) -> Path {
        Path::new(offsets.iter().map(|&a| IVec3::from_array(a)).collect::<Vec<_>>())
    }

    #[test]
    fn coverage_and_footprint() {
        let pat = Pattern::new(vec![
            p(&[[0, 0, 0], [1, 0, 0]]),
            p(&[[0, 0, 0], [0, 1, 0]]),
            p(&[[0, 0, 0], [1, 0, 0]]), // duplicate path — coverage dedups
        ]);
        let cov = pat.cell_coverage();
        assert_eq!(cov.len(), 3);
        assert_eq!(pat.footprint(), 3);
        assert_eq!(pat.import_offsets().len(), 2);
        assert!(cov.contains(&IVec3::ZERO));
    }

    #[test]
    fn coverage_bounds() {
        let pat = Pattern::new(vec![p(&[[0, 0, 0], [-1, 2, 0]]), p(&[[0, 0, 0], [1, -1, 3]])]);
        let (lo, hi) = pat.coverage_bounds();
        assert_eq!(lo, IVec3::new(-1, -1, 0));
        assert_eq!(hi, IVec3::new(1, 2, 3));
    }

    #[test]
    fn first_octant_detection() {
        let yes = Pattern::new(vec![p(&[[0, 0, 0], [1, 1, 0]])]);
        let no = Pattern::new(vec![p(&[[0, 0, 0], [-1, 0, 0]])]);
        assert!(yes.is_first_octant());
        assert!(!no.is_first_octant());
    }

    #[test]
    fn canonical_form_dedups_and_sorts() {
        let a = Pattern::new(vec![
            p(&[[0, 0, 0], [1, 0, 0]]),
            p(&[[0, 0, 0], [0, 1, 0]]),
            p(&[[0, 0, 0], [1, 0, 0]]),
        ])
        .canonicalized();
        let b = Pattern::new(vec![p(&[[0, 0, 0], [0, 1, 0]]), p(&[[0, 0, 0], [1, 0, 0]])])
            .canonicalized();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn search_cost_scales_with_pattern_size() {
        let pat = Pattern::new(vec![p(&[[0, 0, 0], [1, 0, 0]]), p(&[[0, 0, 0], [0, 1, 0]])]);
        assert_eq!(pat.search_cost_per_cell(3.0), 2.0 * 9.0);
    }

    #[test]
    #[should_panic]
    fn mixed_order_rejected() {
        let _ =
            Pattern::new(vec![p(&[[0, 0, 0], [1, 0, 0]]), p(&[[0, 0, 0], [1, 0, 0], [1, 1, 0]])]);
    }

    #[test]
    #[should_panic]
    fn empty_pattern_rejected() {
        let _ = Pattern::new(vec![]);
    }
}
