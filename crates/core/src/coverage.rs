//! Parallel-MD coverage geometry: which cells (and which neighbour ranks) a
//! pattern forces a domain to import (paper §3.1.3 and §4.2).

use crate::Pattern;
use sc_geom::{CellRegion, IVec3};
use std::collections::BTreeSet;

/// The set of cells outside `region` that evaluating `pattern` on every cell
/// of `region` requires — `ω(Ω, Ψ) = Π(Ω, Ψ) − Ω` (Eq. 14 numerator).
/// Indices are unwrapped (global lattice coordinates); callers apply periodic
/// wrapping when mapping to owner ranks.
pub fn domain_import_cells(region: &CellRegion, pattern: &Pattern) -> Vec<IVec3> {
    let coverage = pattern.cell_coverage();
    let mut out: BTreeSet<IVec3> = BTreeSet::new();
    for q in region.iter() {
        for &v in &coverage {
            let c = q + v;
            if !region.contains(c) {
                out.insert(c);
            }
        }
    }
    out.into_iter().collect()
}

/// The import volume `Vω` for a cubic domain of `l` cells per edge — the
/// quantity Eq. 33 closes in analytic form for SC patterns.
pub fn import_volume_cubic(l: u32, pattern: &Pattern) -> u64 {
    let region = CellRegion::new(IVec3::ZERO, IVec3::splat(l as i32));
    domain_import_cells(&region, pattern).len() as u64
}

/// The set of neighbour-rank block offsets (in `{-1,0,1}³ \ {0}`) a domain of
/// `extent` cells per axis must communicate with under `pattern`. For the SC
/// pattern this is the 7 first-octant neighbours (§4.2: "we only need to
/// import atom data from 7 nearest processors"), provided `n−1 ≤ extent`.
pub fn neighbor_rank_offsets(region_extent: IVec3, pattern: &Pattern) -> Vec<IVec3> {
    let region = CellRegion::new(IVec3::ZERO, region_extent);
    let mut blocks: BTreeSet<IVec3> = BTreeSet::new();
    for c in domain_import_cells(&region, pattern) {
        let block = IVec3::new(
            block_of(c.x, region_extent.x),
            block_of(c.y, region_extent.y),
            block_of(c.z, region_extent.z),
        );
        blocks.insert(block);
    }
    blocks.into_iter().collect()
}

/// Which side of a domain of extent `l` a (possibly out-of-range) coordinate
/// falls on: −1 below, 0 inside, +1 above. Coordinates beyond the immediate
/// neighbour domain still map to ±1 because forwarded routing delivers them
/// through the face neighbours.
fn block_of(x: i32, l: i32) -> i32 {
    if x < 0 {
        -1
    } else if x >= l {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eighth_shell, full_shell, generate_fs, half_shell, shift_collapse, theory};

    #[test]
    fn sc_import_matches_eq33() {
        for n in 2..=4usize {
            let sc = shift_collapse(n);
            for l in 1..=5u32 {
                assert_eq!(
                    import_volume_cubic(l, &sc),
                    theory::sc_import_volume(l as u64, n),
                    "l = {l}, n = {n}"
                );
            }
        }
    }

    #[test]
    fn fs_import_matches_formula() {
        for n in 2..=3usize {
            let fs = generate_fs(n);
            for l in 1..=4u32 {
                assert_eq!(
                    import_volume_cubic(l, &fs),
                    theory::fs_import_volume(l as u64, n),
                    "l = {l}, n = {n}"
                );
            }
        }
    }

    #[test]
    fn hs_import_matches_exact_count() {
        // r_collapse keeps the lexicographically-positive twin, so the
        // constructed half shell must match the exact Minkowski-sum count in
        // theory::hs_import_volume.
        let hs = half_shell();
        for l in 1..=5u32 {
            assert_eq!(import_volume_cubic(l, &hs), theory::hs_import_volume(l as u64), "l={l}");
        }
    }

    #[test]
    fn single_cell_imports() {
        // The classic single-cell counts: FS 26, HS 13, ES/SC 7.
        assert_eq!(import_volume_cubic(1, &full_shell()), 26);
        assert_eq!(import_volume_cubic(1, &half_shell()), 13);
        assert_eq!(import_volume_cubic(1, &eighth_shell()), 7);
        assert_eq!(import_volume_cubic(1, &shift_collapse(2)), 7);
    }

    #[test]
    fn sc_talks_to_seven_neighbor_ranks() {
        for n in 2..=4 {
            let sc = shift_collapse(n);
            let extent = IVec3::splat((n as i32 - 1).max(2));
            let ranks = neighbor_rank_offsets(extent, &sc);
            assert_eq!(ranks.len(), 7, "n = {n}");
            assert!(ranks.iter().all(|r| r.in_first_octant() && *r != IVec3::ZERO));
        }
    }

    #[test]
    fn fs_talks_to_26_neighbor_ranks() {
        let fs = generate_fs(2);
        let ranks = neighbor_rank_offsets(IVec3::splat(3), &fs);
        assert_eq!(ranks.len(), 26);
    }

    #[test]
    fn hs_neighbor_blocks() {
        let hs = half_shell();
        // At single-cell granularity HS touches the classical 13 neighbours…
        assert_eq!(neighbor_rank_offsets(IVec3::splat(1), &hs).len(), 13);
        // …but for multi-cell domains the diagonal half-shell directions
        // leak into 4 extra blocks (e.g. (1,-1,0) imports cells on the −y
        // side), giving 17. This is exactly the irregularity octant
        // compression removes: SC always needs 7.
        assert_eq!(neighbor_rank_offsets(IVec3::splat(3), &hs).len(), 17);
    }

    #[test]
    fn import_cells_are_disjoint_from_domain() {
        let region = CellRegion::new(IVec3::ZERO, IVec3::splat(3));
        for cells in [
            domain_import_cells(&region, &shift_collapse(3)),
            domain_import_cells(&region, &generate_fs(2)),
        ] {
            assert!(cells.iter().all(|&c| !region.contains(c)));
            // Sorted and unique by construction.
            let mut sorted = cells.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted, cells);
        }
    }
}
