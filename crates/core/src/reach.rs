//! Generalized patterns for cells smaller than the cutoff (paper §6).
//!
//! The body of the paper assumes cell edges ≥ `r_cut-n`, so consecutive
//! tuple atoms always sit in 27-neighbourhood cells. The conclusion notes
//! that "it is straightforward to generalize the SC algorithm to a cell
//! size less than r_cut-n as was done, e.g., in the midpoint method — in
//! this case, the SC algorithm improves the midpoint method by further
//! eliminating redundant searches." This module is that generalization:
//!
//! With cell edge ≥ `r_cut / k`, two atoms within the cutoff are at most
//! `k` cells apart per axis, so the full-shell walk steps through the
//! `(2k+1)³`-cell **reach-k neighbourhood** instead of the 27-cell one.
//! `OC-SHIFT` and `R-COLLAPSE` apply verbatim — they never look at the step
//! length — so the whole SC pipeline, its completeness proof, and its
//! `≈ ½` collapse factor carry over.
//!
//! Why bother: per-cell density scales as `ρ·(r_cut/k)³`, so a reach-k
//! triplet search examines `|Ψ(k)|·(ρ_cell)³ ∝ (2k+1)⁶ / k⁹` candidates per
//! atom — smaller cells prune the search volume faster than the pattern
//! grows, at the price of more cells and more pattern paths. The
//! `cell_subdivision` benchmark quantifies the trade-off.

use crate::{oc_shift, r_collapse, Path, Pattern};
use sc_geom::IVec3;

/// `GENERATE-FS(n, k)`: every walk `(v0…v_{n-1})` with `v0 = 0` and
/// `‖v_{i+1} − v_i‖_∞ ≤ k` — the reach-k full shell, n-complete for cell
/// edges ≥ `r_cut-n / k` by the same induction as Lemma 1.
///
/// `generate_fs_reach(n, 1)` ≡ `generate_fs(n)`.
///
/// # Panics
/// Panics for `n < 2`, `k < 1`, or pattern sizes beyond practical memory
/// (`(2k+1)^{3(n-1)} > 10⁷`).
pub fn generate_fs_reach(n: usize, k: i32) -> Pattern {
    assert!(n >= 2, "need n ≥ 2, got {n}");
    assert!(k >= 1, "need reach ≥ 1, got {k}");
    let step_count = (2 * k + 1).pow(3) as u64;
    let total = step_count.pow(n as u32 - 1);
    assert!(
        total <= 10_000_000,
        "reach-{k} FS({n}) would have {total} paths; that is beyond practical use"
    );
    let steps: Vec<IVec3> = IVec3::box_iter(IVec3::splat(-k), IVec3::splat(k)).collect();
    let mut walks: Vec<Vec<IVec3>> = vec![vec![IVec3::ZERO]];
    for _ in 1..n {
        let mut next = Vec::with_capacity(walks.len() * steps.len());
        for w in &walks {
            let last = *w.last().expect("walks are non-empty");
            for &d in &steps {
                let mut w2 = w.clone();
                w2.push(last + d);
                next.push(w2);
            }
        }
        walks = next;
    }
    Pattern::new(walks.into_iter().map(Path::new).collect())
}

/// The reach-k shift-collapse pattern: `R-COLLAPSE(OC-SHIFT(FS(n, k)))`.
/// Complete for cell edges ≥ `r_cut-n / k`, first-octant coverage within
/// `[0, k(n-1)]³`, and ≈ half the search cost of the reach-k full shell.
pub fn shift_collapse_reach(n: usize, k: i32) -> Pattern {
    r_collapse(&oc_shift(&generate_fs_reach(n, k)))
}

/// Closed-form counts for reach-k patterns — the Eq. 25/27/29 family with
/// 27 replaced by `(2k+1)³`.
pub mod reach_theory {
    /// `|Ψ_FS(n, k)| = ((2k+1)³)^{n-1}`.
    pub fn fs_path_count(n: usize, k: u32) -> u64 {
        assert!(n >= 2 && k >= 1);
        let b = (2 * k as u64 + 1).pow(3);
        b.pow(n as u32 - 1)
    }

    /// Self-reflective walk count: `((2k+1)³)^{⌊(n-1)/2⌋}`.
    pub fn self_reflective_count(n: usize, k: u32) -> u64 {
        assert!(n >= 2 && k >= 1);
        let b = (2 * k as u64 + 1).pow(3);
        b.pow(((n - 1) / 2) as u32)
    }

    /// `|Ψ_SC(n, k)| = (|Ψ_FS| + s)/2`.
    pub fn sc_path_count(n: usize, k: u32) -> u64 {
        (fs_path_count(n, k) + self_reflective_count(n, k)) / 2
    }

    /// Reach-k SC import volume for a cubic domain of `l` cells:
    /// `(l + k(n−1))³ − l³` — Eq. 33 with the octant depth scaled by k.
    pub fn sc_import_volume(l: u64, n: usize, k: u64) -> u64 {
        assert!(n >= 2 && k >= 1);
        let d = k * (n as u64 - 1);
        (l + d).pow(3) - l.pow(3)
    }

    /// Relative candidate volume of a reach-k n-tuple cell search versus
    /// reach-1, at equal atom density: `(|Ψ(k)|/|Ψ(1)|)·(ρ_cell(k)/ρ_cell(1))ⁿ
    /// · (cells(k)/cells(1)) = (2k+1)^{3(n-1)} / k^{3n} · k³ /
    /// 27^{n-1}` — the §6 trade-off in one number (< 1 means the smaller
    /// cells win).
    pub fn search_volume_ratio(n: usize, k: u32) -> f64 {
        let k = k as f64;
        let num = (2.0 * k + 1.0).powi(3 * (n as i32 - 1));
        let den = 27f64.powi(n as i32 - 1);
        // cells scale as k³, per-cell density as k⁻³, candidates per cell
        // as ρ_cellⁿ → net k^{3 - 3n}.
        (num / den) * k.powi(3 - 3 * n as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::reach_theory as rt;
    use super::*;
    use crate::{chain_complete_reach, generate_fs, shift_collapse};

    #[test]
    fn reach1_reduces_to_classic() {
        assert_eq!(generate_fs_reach(3, 1).canonicalized(), generate_fs(3).canonicalized());
        assert_eq!(
            shift_collapse_reach(2, 1).canonicalized().len(),
            shift_collapse(2).canonicalized().len()
        );
    }

    #[test]
    fn counts_match_reach_theory() {
        for (n, k) in [(2usize, 1u32), (2, 2), (2, 3), (3, 1), (3, 2)] {
            let fs = generate_fs_reach(n, k as i32);
            let sc = shift_collapse_reach(n, k as i32);
            assert_eq!(fs.len() as u64, rt::fs_path_count(n, k), "FS n={n} k={k}");
            assert_eq!(sc.len() as u64, rt::sc_path_count(n, k), "SC n={n} k={k}");
            assert_eq!(
                sc.self_reflective_count() as u64,
                rt::self_reflective_count(n, k),
                "self-reflective n={n} k={k}"
            );
        }
    }

    #[test]
    fn reach2_pair_counts() {
        // (2·2+1)³ = 125 steps: FS 125 paths, SC (125+1)/2 = 63.
        assert_eq!(generate_fs_reach(2, 2).len(), 125);
        assert_eq!(shift_collapse_reach(2, 2).len(), 63);
    }

    #[test]
    fn reach_k_sc_is_first_octant_with_scaled_coverage() {
        let sc = shift_collapse_reach(3, 2);
        assert!(sc.is_first_octant());
        let (lo, hi) = sc.coverage_bounds();
        assert_eq!(lo, IVec3::ZERO);
        // Coverage within [0, k(n−1)]³ = [0, 4]³.
        assert!(hi.linf_norm() <= 4);
    }

    #[test]
    fn reach_import_volume_matches_formula() {
        use crate::import_volume_cubic;
        for k in 1..=2u32 {
            let sc = shift_collapse_reach(2, k as i32);
            for l in 1..=4 {
                assert_eq!(
                    import_volume_cubic(l, &sc),
                    rt::sc_import_volume(l as u64, 2, k as u64),
                    "l={l}, k={k}"
                );
            }
        }
    }

    #[test]
    fn reach_k_patterns_are_chain_complete() {
        // Completeness at the reach-k chain level: every walk whose steps
        // have L∞ ≤ k must be generated.
        for (n, k) in [(2usize, 2i32), (3, 2)] {
            let sc = shift_collapse_reach(n, k);
            let dims = IVec3::splat(((n as i32 - 1) * k + 1).max(5));
            assert!(chain_complete_reach(dims, &sc, k), "n={n}, k={k}");
        }
    }

    #[test]
    fn search_volume_ratio_favors_subdivision_for_triplets() {
        // For n = 3, k = 2: (125/27)² · 2⁻⁶ = 21.4/64 ≈ 0.335 — smaller
        // cells cut the triplet candidate volume by ~3×.
        let r = rt::search_volume_ratio(3, 2);
        assert!((r - (125.0f64 / 27.0).powi(2) / 64.0).abs() < 1e-12);
        assert!(r < 0.5);
        // For pairs the win is milder: 125/27 / 8 ≈ 0.58.
        let r2 = rt::search_volume_ratio(2, 2);
        assert!((0.5..0.7).contains(&r2));
    }

    #[test]
    #[should_panic]
    fn oversized_reach_rejected() {
        let _ = generate_fs_reach(4, 4);
    }
}
