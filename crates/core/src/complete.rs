//! n-completeness checking (the paper's Eq. 11) at the cell-chain level.
//!
//! A pattern is n-complete when every chain-cutoff n-tuple can be generated.
//! Because an n-tuple in `Γ*(n)` always occupies a cell chain whose
//! consecutive cells are nearest neighbours (the induction in Lemma 1), it
//! suffices — and is necessary, since atoms can sit anywhere inside their
//! cells — that the pattern generate **every nearest-neighbour cell chain**.
//! This module checks that by exhaustion on a small periodic lattice.

use crate::ucp::{canonical_chain, ucp_chains, Chain};
use crate::Pattern;
use sc_geom::IVec3;

/// Enumerates all canonical reach-`k` chains of length n on a periodic
/// lattice of `dims` cells — the cell-level image of `Γ*(n)` when the cell
/// edge is `r_cut / k` (k = 1 is the paper's nearest-neighbour case).
fn all_neighbor_chains_reach(dims: IVec3, n: usize, k: i32) -> Vec<Chain> {
    let nbrs: Vec<IVec3> = IVec3::box_iter(IVec3::splat(-k), IVec3::splat(k)).collect();
    let mut chains: Vec<Chain> =
        IVec3::box_iter(IVec3::ZERO, dims - IVec3::splat(1)).map(|q| vec![q]).collect();
    for _ in 1..n {
        let mut next = Vec::with_capacity(chains.len() * nbrs.len());
        for c in &chains {
            let last = *c.last().expect("chains are non-empty");
            for &d in &nbrs {
                let mut c2 = c.clone();
                c2.push((last + d).rem_euclid(dims));
                next.push(c2);
            }
        }
        chains = next;
    }
    let mut out: Vec<Chain> = chains.into_iter().map(canonical_chain).collect();
    out.sort();
    out.dedup();
    out
}

/// Whether `pattern` generates every reach-`k` cell chain of its order on a
/// periodic `dims` lattice — the completeness criterion for subdivided
/// cells (paper §6; see the [`crate::generate_fs_reach`] family).
pub fn chain_complete_reach(dims: IVec3, pattern: &Pattern, k: i32) -> bool {
    let generated = ucp_chains(dims, pattern);
    all_neighbor_chains_reach(dims, pattern.n(), k).into_iter().all(|c| generated.contains(&c))
}

/// Returns the nearest-neighbour chains of length n that `pattern` fails to
/// generate on a periodic `dims` lattice. Empty ⇔ the pattern is n-complete
/// on that lattice (Theorem 2 predicts empty for SC patterns whenever
/// `dims ≥ n` per axis, so that octant offsets don't alias through the
/// periodic wrap).
pub fn missing_chains(dims: IVec3, pattern: &Pattern) -> Vec<Chain> {
    let generated = ucp_chains(dims, pattern);
    all_neighbor_chains_reach(dims, pattern.n(), 1)
        .into_iter()
        .filter(|c| !generated.contains(c))
        .collect()
}

/// Whether `pattern` is n-complete on a periodic `dims` lattice: every
/// nearest-neighbour cell chain of length n is generated (Eq. 11 at the
/// cell level).
pub fn chain_complete(dims: IVec3, pattern: &Pattern) -> bool {
    missing_chains(dims, pattern).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        eighth_shell, full_shell, generate_fs, half_shell, oc_shift, r_collapse, shift_collapse,
        Path,
    };

    #[test]
    fn fs_is_complete_lemma1() {
        for n in 2..=3 {
            assert!(chain_complete(IVec3::splat(4), &generate_fs(n)), "n = {n}");
        }
    }

    #[test]
    fn sc_is_complete_theorem2() {
        for n in 2..=4 {
            let dims = IVec3::splat((n as i32).max(4));
            assert!(chain_complete(dims, &shift_collapse(n)), "n = {n}");
        }
    }

    #[test]
    fn classical_pair_patterns_are_complete() {
        let dims = IVec3::splat(4);
        assert!(chain_complete(dims, &full_shell()));
        assert!(chain_complete(dims, &half_shell()));
        assert!(chain_complete(dims, &eighth_shell()));
    }

    #[test]
    fn intermediate_stages_are_complete() {
        // Lemma 2 and Lemma 4: OC-SHIFT and R-COLLAPSE preserve the force
        // set, hence completeness, at every stage of the SC pipeline.
        let dims = IVec3::splat(4);
        let fs = generate_fs(3);
        let oc = oc_shift(&fs);
        let rc = r_collapse(&oc);
        assert!(chain_complete(dims, &oc));
        assert!(chain_complete(dims, &rc));
    }

    #[test]
    fn crippled_pattern_is_detected_incomplete() {
        // Drop one path from the eighth shell: chains of the dropped
        // direction go missing.
        let es = eighth_shell();
        let kept: Vec<Path> = es.iter().skip(1).cloned().collect();
        let crippled = Pattern::new(kept);
        let missing = missing_chains(IVec3::splat(4), &crippled);
        assert!(!missing.is_empty());
        assert!(!chain_complete(IVec3::splat(4), &crippled));
    }

    #[test]
    fn missing_chains_empty_for_complete_pattern() {
        assert!(missing_chains(IVec3::splat(4), &eighth_shell()).is_empty());
    }

    #[test]
    fn nonuniform_lattice_dims() {
        // Completeness is not an artifact of cubic lattices.
        let dims = IVec3::new(4, 5, 6);
        assert!(chain_complete(dims, &shift_collapse(2)));
        assert!(chain_complete(dims, &shift_collapse(3)));
    }
}
