//! Grounding the performance model in the implementation: the quantities
//! `sc-netmodel` feeds its profiles (ghost counts, message counts, search
//! candidates) must track what the real runtime and engine actually do.

use shift_collapse_md::geom::IVec3;
use shift_collapse_md::md::Method;
use shift_collapse_md::netmodel::SilicaWorkload;
use shift_collapse_md::parallel::rank::ForceField;
use shift_collapse_md::prelude::*;

/// Builds an 8-rank silica run and returns (per-rank atoms, measured ghosts
/// per rank per exchange cycle).
fn measured_ghosts(method: Method) -> (f64, f64) {
    let v = Vashishta::silica();
    let masses = v.params().masses;
    let (store, bbox) = build_silica_like(4, 7.16, masses, 0.01, 5);
    let n_atoms = store.len() as f64;
    let ff = ForceField {
        pair: Some(Box::new(v.pair.clone())),
        triplet: Some(Box::new(v.triplet.clone())),
        quadruplet: None,
        method,
    };
    let mut dist = DistributedSim::new(store, bbox, IVec3::splat(2), ff, 0.0005).unwrap();
    // One priming cycle + one step (two more cycles) = 3 exchange cycles.
    dist.step();
    let stats = dist.comm_stats();
    let cycles = 3.0;
    let ranks = 8.0;
    (n_atoms / ranks, stats.ghosts_imported as f64 / cycles / ranks)
}

#[test]
fn model_ghost_counts_track_runtime() {
    // The model's continuum import volume should agree with the measured
    // per-rank ghost count within the cell-quantization slack (the runtime
    // rounds slab widths up to whole cells).
    let w = SilicaWorkload::silica();
    let model = MdCostModel::new(w, MachineProfile::xeon());
    for method in [Method::ShiftCollapse, Method::FullShell] {
        let (n_per_rank, measured) = measured_ghosts(method);
        let predicted = model.step_time(method, n_per_rank).ghosts;
        let ratio = measured / predicted;
        assert!(
            (0.5..2.5).contains(&ratio),
            "{}: measured {measured:.0} ghosts/rank vs model {predicted:.0} (ratio {ratio:.2})",
            method.name()
        );
    }
    // And the SC/FS import ordering matches in both worlds.
    let (n, sc_meas) = measured_ghosts(Method::ShiftCollapse);
    let (_, fs_meas) = measured_ghosts(Method::FullShell);
    assert!(sc_meas < fs_meas);
    let sc_pred = model.step_time(Method::ShiftCollapse, n).ghosts;
    let fs_pred = model.step_time(Method::FullShell, n).ghosts;
    assert!(sc_pred < fs_pred);
}

#[test]
fn model_search_ratio_tracks_engine() {
    // The model charges SC half of FS's triplet candidates (Eq. 29); the
    // engine's measured candidate ratio must agree.
    let v = Vashishta::silica();
    let masses = v.params().masses;
    let count = |method: Method| {
        let (store, bbox) = build_silica_like(3, 7.16, masses, 0.01, 7);
        let mut sim = Simulation::builder(store, bbox)
            .pair_potential(Box::new(v.pair.clone()))
            .triplet_potential(Box::new(v.triplet.clone()))
            .method(method)
            .build()
            .unwrap();
        sim.compute_forces().tuples.triplet.candidates as f64
    };
    let engine_ratio = count(Method::FullShell) / count(Method::ShiftCollapse);
    let model_ratio = shift_collapse_md::pattern::theory::fs_over_sc_ratio(3);
    assert!(
        (engine_ratio / model_ratio - 1.0).abs() < 0.15,
        "engine FS/SC candidate ratio {engine_ratio:.3} vs theory {model_ratio:.3}"
    );
}

#[test]
fn model_message_counts_match_plan() {
    use shift_collapse_md::parallel::GhostPlan;
    // 12 messages/step for SC (3 ghost + 3 reduce + 6 migration): the
    // model's constant must match the ghost plan's hop structure.
    let sc_plan = GhostPlan::for_method(Method::ShiftCollapse, 5.5).unwrap();
    let fs_plan = GhostPlan::for_method(Method::FullShell, 5.5).unwrap();
    let model = MdCostModel::new(SilicaWorkload::silica(), MachineProfile::xeon());
    let sc_msgs = model.step_time(Method::ShiftCollapse, 1000.0).messages;
    assert_eq!(sc_msgs as usize, 2 * sc_plan.hop_count() + 6);
    // The model charges FS/Hybrid for the *paper's* direct 26-neighbour
    // exchange (58 messages); our own runtime forwards in 6 hops (18
    // messages) — the model must charge at least as much as our runtime.
    let fs_msgs = model.step_time(Method::FullShell, 1000.0).messages;
    assert!(fs_msgs as usize >= 2 * fs_plan.hop_count() + 6);
}
