//! CI contract test over the checked-in scenario zoo: every document in
//! `scenarios/` (including the pinned bench matrix under
//! `scenarios/bench/`) must validate against
//! `schema/scenario.schema.json`, decode through `sc-spec`, and
//! round-trip its canonical JSON form losslessly.

use shift_collapse_md::obs::json::Json;
use shift_collapse_md::obs::schema;
use shift_collapse_md::spec::ScenarioSpec;
use std::path::{Path, PathBuf};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn zoo_files() -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in [repo_path("scenarios"), repo_path("scenarios/bench")] {
        for entry in std::fs::read_dir(&dir).expect("scenarios directory is checked in") {
            let path = entry.unwrap().path();
            match path.extension().and_then(|e| e.to_str()) {
                Some("json") | Some("toml") => files.push(path),
                _ => {}
            }
        }
    }
    files.sort();
    assert!(files.len() >= 16, "expected the full zoo, found {} files", files.len());
    files
}

#[test]
fn every_zoo_scenario_validates_against_the_schema() {
    let schema =
        Json::parse(&std::fs::read_to_string(repo_path("schema/scenario.schema.json")).unwrap())
            .expect("scenario schema is valid JSON");
    for path in zoo_files() {
        // TOML documents are checked in their canonical JSON form — the
        // schema pins one logical layout, not one surface syntax.
        let spec = ScenarioSpec::from_path(&path)
            .unwrap_or_else(|e| panic!("{} does not decode: {e}", path.display()));
        let doc = if path.extension().is_some_and(|e| e == "toml") {
            spec.to_json()
        } else {
            Json::parse(&std::fs::read_to_string(&path).unwrap())
                .unwrap_or_else(|e| panic!("{} is not JSON: {e}", path.display()))
        };
        schema::validate(&doc, &schema)
            .unwrap_or_else(|e| panic!("{} violates the scenario schema: {e}", path.display()));
    }
}

#[test]
fn every_zoo_scenario_round_trips_canonically() {
    for path in zoo_files() {
        let spec = ScenarioSpec::from_path(&path).unwrap();
        let canonical = spec.to_json().to_string();
        let again = ScenarioSpec::from_json_str(&canonical).unwrap_or_else(|e| {
            panic!("{} canonical form does not re-decode: {e}", path.display())
        });
        assert_eq!(again, spec, "{} round-trip drift", path.display());
        assert_eq!(
            again.to_json().to_string(),
            canonical,
            "{} canonicalization is not idempotent",
            path.display()
        );
    }
}

#[test]
fn bench_specs_match_their_filenames() {
    // The bench harness embeds scenarios/bench/* by filename and trusts
    // each file's `name`: a renamed file that kept a stale name would
    // silently mislabel a benchmark case.
    for path in zoo_files() {
        if path.parent().and_then(|p| p.file_name()) != Some(std::ffi::OsStr::new("bench")) {
            continue;
        }
        let spec = ScenarioSpec::from_path(&path).unwrap();
        let stem = path.file_stem().unwrap().to_str().unwrap();
        assert_eq!(
            spec.name.to_lowercase(),
            stem,
            "{}: spec name {:?} disagrees with its filename",
            path.display(),
            spec.name
        );
    }
}
