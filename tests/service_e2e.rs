//! End-to-end exercise of the job service over a real Unix socket: the
//! `scmd serve` daemon as a child process, driven by the `scmd`
//! submit/status/cancel/results client verbs and the library client.
//!
//! Covers the service contract the CI `service-smoke` job relies on:
//! several concurrent jobs of mixed specs, cancellation releasing a lane,
//! kill -9 + `--resume true` continuing bitwise-exactly, and the daemon's
//! results document matching a standalone `scmd run` of the same spec
//! byte for byte.

use shift_collapse_md::obs::json::Json;
use shift_collapse_md::serve::{client, Request, Response};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scmd() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_scmd"));
    c.stdout(Stdio::piped()).stderr(Stdio::piped());
    c
}

struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        let dir = std::env::temp_dir().join(format!("scmd-e2e-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        TestDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A daemon child that is SIGKILLed if a panic unwinds past it.
struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

fn spawn_daemon(socket: &Path, state: &Path, resume: bool) -> DaemonGuard {
    // Wrapped in the guard immediately so the child is reaped even if the
    // readiness wait below panics.
    let guard = DaemonGuard(
        scmd()
            .args([
                "serve",
                "--socket",
                socket.to_str().unwrap(),
                "--state",
                state.to_str().unwrap(),
                "--lanes",
                "2",
                "--slice",
                "2",
                "--resume",
                if resume { "true" } else { "false" },
            ])
            .spawn()
            .expect("daemon spawns"),
    );
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if matches!(client::request(socket, &Request::Ping), Ok(Response::Pong { .. })) {
            return guard;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("daemon did not come up on {}", socket.display());
}

fn lj_spec(name: &str, steps: u64, extra: &str) -> String {
    format!(
        r#"{{
            "schema": "sc-scenario/1",
            "name": "{name}",
            "system": {{"kind": "lj", "cells": 5, "a": 1.5599, "temp": 1.0, "seed": 42}},
            "potential": {{"kind": "lj", "cutoff": 2.5}},
            "method": "sc",
            "executor": {{"kind": "serial"}},
            "dt": 0.002,
            "steps": {steps}{extra}
        }}"#
    )
}

fn job(socket: &Path, id: &str) -> Json {
    match client::request(socket, &Request::Status { id: Some(id.into()) }).unwrap() {
        Response::Status { jobs } => jobs.into_iter().next().expect("job exists"),
        other => panic!("unexpected response {}", other.to_json()),
    }
}

fn state_of(socket: &Path, id: &str) -> String {
    job(socket, id).get("state").and_then(|v| v.as_str()).unwrap().to_string()
}

fn wait_for_state(socket: &Path, id: &str, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if state_of(socket, id) == want {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("{id} never reached {want}; job: {}", job(socket, id));
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("scmd runs");
    assert!(
        out.status.success(),
        "scmd failed (status {:?}): {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// Mixed-spec concurrency, CLI client verbs, cancellation, and the
/// standalone-vs-served bitwise results contract.
#[test]
fn daemon_serves_mixed_jobs_with_cancellation_and_bitwise_results() {
    let dir = TestDir::new("smoke");
    let socket = dir.path("scmd.sock");
    let _daemon = spawn_daemon(&socket, &dir.path("state"), false);

    // Four concurrent jobs across 2 lanes: two LJ serial runs, one
    // distributed BSP run, and a long job destined for cancellation.
    let lj_path = dir.path("e2e-lj.json");
    std::fs::write(&lj_path, lj_spec("e2e-lj", 12, r#", "checkpoint": {"every": 4}"#)).unwrap();
    let submit_out = run_ok(scmd().args([
        "submit",
        "--spec",
        lj_path.to_str().unwrap(),
        "--socket",
        socket.to_str().unwrap(),
    ]));
    let lj_id = submit_out.trim().to_string();
    assert!(lj_id.starts_with("job-"), "unexpected submit output {submit_out:?}");

    let submit = |text: String| -> String {
        let spec = Json::parse(&text).unwrap();
        match client::request(&socket, &Request::Submit { spec }).unwrap() {
            Response::Submitted { id } => id,
            other => panic!("unexpected response {}", other.to_json()),
        }
    };
    let silica_id = submit(
        r#"{
            "schema": "sc-scenario/1",
            "name": "e2e-silica",
            "system": {"kind": "silica", "cells": 3, "a": 7.16, "temp": 0.05, "seed": 42},
            "potential": {"kind": "vashishta"},
            "method": "sc",
            "executor": {"kind": "serial"},
            "dt": 0.0005,
            "steps": 4
        }"#
        .to_string(),
    );
    let bsp_id = submit(
        r#"{
            "schema": "sc-scenario/1",
            "name": "e2e-bsp",
            "system": {"kind": "lj", "cells": 7, "a": 1.5599, "temp": 1.0, "seed": 42},
            "potential": {"kind": "lj", "cutoff": 2.5},
            "method": "sc",
            "executor": {"kind": "bsp", "grid": [2, 1, 1]},
            "dt": 0.002,
            "steps": 6,
            "checkpoint": {"every": 2}
        }"#
        .to_string(),
    );
    let doomed_id = submit(lj_spec("e2e-doomed", 200000, ""));

    // Cancel through the CLI verb; the lane must come free again.
    run_ok(scmd().args(["cancel", "--id", &doomed_id, "--socket", socket.to_str().unwrap()]));
    wait_for_state(&socket, &doomed_id, "cancelled");

    for id in [&lj_id, &silica_id, &bsp_id] {
        wait_for_state(&socket, id, "done");
    }

    // The status table lists all four jobs.
    let table = run_ok(scmd().args(["status", "--socket", socket.to_str().unwrap()]));
    for (id, frag) in [(&lj_id, "e2e-lj"), (&silica_id, "e2e-silica"), (&bsp_id, "e2e-bsp")] {
        assert!(table.contains(id.as_str()) && table.contains(frag), "table:\n{table}");
    }

    // Served results must byte-match a standalone run of the same spec.
    let served = dir.path("served.json");
    run_ok(scmd().args([
        "results",
        "--id",
        &lj_id,
        "--socket",
        socket.to_str().unwrap(),
        "--out",
        served.to_str().unwrap(),
    ]));
    let standalone = dir.path("standalone.json");
    run_ok(scmd().args([
        "run",
        "--spec",
        lj_path.to_str().unwrap(),
        "--results",
        standalone.to_str().unwrap(),
    ]));
    let (a, b) = (std::fs::read(&served).unwrap(), std::fs::read(&standalone).unwrap());
    assert!(!a.is_empty() && a == b, "served and standalone observables differ");

    // A graceful shutdown parks the daemon.
    run_ok(scmd().args(["shutdown", "--socket", socket.to_str().unwrap()]));
}

/// SIGKILL mid-run, restart with `--resume true`: the job continues from
/// its last persisted checkpoint and the final observables are
/// byte-identical to an uninterrupted standalone run.
#[test]
fn killed_daemon_resumes_bitwise() {
    let dir = TestDir::new("resume");
    let socket = dir.path("scmd.sock");
    let state = dir.path("state");
    let spec_path = dir.path("e2e-resume.json");
    std::fs::write(&spec_path, lj_spec("e2e-resume", 4000, r#", "checkpoint": {"every": 50}"#))
        .unwrap();

    let mut daemon = spawn_daemon(&socket, &state, false);
    let id = {
        let spec = Json::parse(&std::fs::read_to_string(&spec_path).unwrap()).unwrap();
        match client::request(&socket, &Request::Submit { spec }).unwrap() {
            Response::Submitted { id } => id,
            other => panic!("unexpected response {}", other.to_json()),
        }
    };

    // Let it make real progress (past at least one persisted checkpoint),
    // then kill without ceremony.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let done = job(&socket, &id).get("steps_done").and_then(|v| v.as_f64()).unwrap_or(0.0);
        if done >= 100.0 {
            break;
        }
        assert!(done < 4000.0, "job finished before the kill — raise the step count");
        assert!(Instant::now() < deadline, "job made no progress");
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon.0.kill().unwrap();
    daemon.0.wait().unwrap();

    let _daemon = spawn_daemon(&socket, &state, true);
    wait_for_state(&socket, &id, "done");
    let resumed = match client::request(&socket, &Request::Results { id: id.clone() }).unwrap() {
        Response::Results { doc, .. } => doc.to_string(),
        other => panic!("unexpected response {}", other.to_json()),
    };

    let standalone = dir.path("standalone.json");
    run_ok(scmd().args([
        "run",
        "--spec",
        spec_path.to_str().unwrap(),
        "--results",
        standalone.to_str().unwrap(),
    ]));
    assert_eq!(
        resumed,
        std::fs::read_to_string(&standalone).unwrap(),
        "resumed results drifted from the uninterrupted run"
    );
}
