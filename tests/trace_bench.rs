//! CI contract tests for the observability tentpole: `scmd run --trace`
//! must emit a Chrome Trace Format file that round-trips through the
//! vendored JSON parser with at least one event for every phase in the
//! taxonomy, and `scmd bench` must emit a schema-valid bench document
//! whose comparator fails loudly on a degraded copy.

use shift_collapse_md::obs::json::Json;
use shift_collapse_md::obs::{schema, Phase};
use std::process::Command;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("scmd-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn scmd_run_trace_round_trips_with_every_phase() {
    let dir = tmp_dir("trace");
    let trace_path = dir.join("trace.json");

    let output = Command::new(env!("CARGO_BIN_EXE_scmd"))
        .args([
            "run",
            "--system",
            "lj",
            "--cells",
            "5",
            "--steps",
            "5",
            "--trace",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("scmd runs");
    assert!(output.status.success(), "scmd failed: {}", String::from_utf8_lossy(&output.stderr));

    let text = std::fs::read_to_string(&trace_path).expect("trace file was written");
    let doc = Json::parse(&text).expect("trace file is valid JSON");
    assert_eq!(doc.get("displayTimeUnit").and_then(|v| v.as_str()), Some("ms"));
    let rows = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    assert!(!rows.is_empty());

    // Every phase of the taxonomy appears as a complete ("X") interval.
    for phase in Phase::ALL {
        assert!(
            rows.iter().any(|r| {
                r.get("ph").and_then(|v| v.as_str()) == Some("X")
                    && r.get("name").and_then(|v| v.as_str()) == Some(phase.name())
            }),
            "no {} interval in the trace",
            phase.name()
        );
    }
    // Intervals carry microsecond timestamps/durations and a step tag.
    let compute =
        rows.iter().find(|r| r.get("name").and_then(|v| v.as_str()) == Some("compute")).unwrap();
    assert!(compute.get("ts").and_then(|v| v.as_f64()).is_some());
    assert!(compute.get("dur").and_then(|v| v.as_f64()).unwrap() > 0.0);
    assert!(compute.get("args").and_then(|a| a.get("step")).is_some());

    std::fs::remove_dir_all(&dir).ok();
}

fn run_bench(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_scmd")).args(args).output().expect("scmd runs")
}

#[test]
fn scmd_bench_emits_schema_valid_doc_and_comparator_rejects_degraded_copy() {
    let dir = tmp_dir("bench");
    let out_path = dir.join("bench.json");
    let out = out_path.to_str().unwrap();

    let output = run_bench(&["bench", "--quick", "true", "--out", out]);
    assert!(
        output.status.success(),
        "scmd bench failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The document validates against the checked-in schema.
    let schema_text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/schema/bench.schema.json"))
            .expect("bench schema is checked in");
    let schema_doc = Json::parse(&schema_text).expect("bench schema is valid JSON");
    let text = std::fs::read_to_string(&out_path).expect("bench document was written");
    let doc = Json::parse(&text).expect("bench document is valid JSON");
    schema::validate(&doc, &schema_doc).expect("bench document matches its schema");
    assert!(
        doc.get("cases").and_then(|c| c.as_array()).map(|c| c.len()).unwrap_or(0) >= 6,
        "the pinned matrix covers serial, threaded, and BSP cases"
    );

    // An identical pair compares clean…
    let ok = run_bench(&["bench", "--compare", out, "--with", out]);
    assert!(ok.status.success(), "identical documents must not regress");

    // …and a degraded copy (counter drift — the deterministic signal the
    // comparator guards) makes it exit non-zero.
    let degraded_path = dir.join("degraded.json");
    let degraded_text = {
        let Json::Obj(mut fields) = doc else { panic!("bench doc is an object") };
        for (key, value) in &mut fields {
            if key != "cases" {
                continue;
            }
            let Json::Arr(cases) = value else { panic!("cases is an array") };
            let Json::Obj(case) = &mut cases[0] else { panic!("case is an object") };
            for (k, v) in case.iter_mut() {
                if k == "tuples_accepted" {
                    let was = v.as_f64().unwrap();
                    *v = Json::num(was + 1.0);
                }
            }
        }
        Json::Obj(fields).to_string()
    };
    std::fs::write(&degraded_path, degraded_text).unwrap();
    let bad = run_bench(&["bench", "--compare", out, "--with", degraded_path.to_str().unwrap()]);
    assert!(!bad.status.success(), "counter drift must exit non-zero");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("REGRESSION"), "stderr names the regression: {stderr}");
    assert!(stderr.contains("tuples_accepted"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}
