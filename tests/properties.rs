//! Property-based tests (proptest) over the paper's invariants: whatever
//! the atom configuration, box, or path, the algebraic properties of §3
//! must hold on real data.

use proptest::prelude::*;
use shift_collapse_md::cell::{AtomStore, CellLattice, Species};
use shift_collapse_md::geom::{IVec3, SimulationBox, Vec3};
use shift_collapse_md::md::engine::{visit_pairs, visit_triplets, Dedup, PatternPlan};
use shift_collapse_md::md::reference;
use shift_collapse_md::pattern::ucp::single_path_chains;
use shift_collapse_md::pattern::{generate_fs, r_collapse, shift_collapse, Path, Pattern};
use std::collections::HashSet;

/// Strategy: a random atom store of 5–60 atoms in a box of edge 3–6 cutoffs.
fn atoms_in_box() -> impl Strategy<Value = (AtomStore, SimulationBox)> {
    (
        3.0f64..6.0,
        5usize..60,
        proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 60),
    )
        .prop_map(|(edge, n, coords)| {
            let bbox = SimulationBox::cubic(edge);
            let mut store = AtomStore::single_species();
            for (i, &(x, y, z)) in coords.iter().take(n).enumerate() {
                store.push(
                    i as u64,
                    Species::DEFAULT,
                    Vec3::new(x * edge, y * edge, z * edge),
                    Vec3::ZERO,
                );
            }
            (store, bbox)
        })
}

/// Strategy: a random origin-anchored neighbour walk of length n.
fn neighbor_walk(n: usize) -> impl Strategy<Value = Path> {
    proptest::collection::vec((-1i32..=1, -1i32..=1, -1i32..=1), n - 1).prop_map(|steps| {
        let mut v = vec![IVec3::ZERO];
        for (x, y, z) in steps {
            let last = *v.last().unwrap();
            v.push(last + IVec3::new(x, y, z));
        }
        Path::new(v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq. 11 on real atoms: the SC pattern's filtered pair set equals the
    /// brute-force Γ*(2), for arbitrary configurations.
    #[test]
    fn sc_pairs_equal_brute_force((store, bbox) in atoms_in_box()) {
        let rcut = 1.0;
        let mut lat = CellLattice::new(bbox, rcut);
        lat.rebuild(&store);
        let plan = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
        let mut found = HashSet::new();
        let mut dup = false;
        visit_pairs(&lat, &store, &plan, rcut, |i, j, _, _| {
            dup |= !found.insert((i.min(j), i.max(j)));
        });
        prop_assert!(!dup, "duplicate pair");
        let expect = reference::all_pairs(&store, &bbox, rcut);
        prop_assert_eq!(found, expect);
    }

    /// Same for triplets, against the brute-force Γ*(3).
    #[test]
    fn sc_triplets_equal_brute_force((store, bbox) in atoms_in_box()) {
        let rcut = 1.0;
        let mut lat = CellLattice::new(bbox, rcut);
        lat.rebuild(&store);
        let plan = PatternPlan::new(&shift_collapse(3), Dedup::Collapsed);
        let mut found = HashSet::new();
        let mut dup = false;
        visit_triplets(&lat, &store, &plan, rcut, |i, j, k, _, _| {
            dup |= !found.insert((i.min(k), j, i.max(k)));
        });
        prop_assert!(!dup, "duplicate triplet");
        let expect = reference::all_triplets(&store, &bbox, rcut);
        prop_assert_eq!(found, expect);
    }

    /// FS with the reflective guard visits exactly the same sets.
    #[test]
    fn fs_guarded_equals_sc((store, bbox) in atoms_in_box()) {
        let rcut = 1.0;
        let mut lat = CellLattice::new(bbox, rcut);
        lat.rebuild(&store);
        let fs = PatternPlan::new(&generate_fs(3), Dedup::Guarded);
        let sc = PatternPlan::new(&shift_collapse(3), Dedup::Collapsed);
        let collect = |plan: &PatternPlan| {
            let mut out = HashSet::new();
            visit_triplets(&lat, &store, plan, rcut, |i, j, k, _, _| {
                out.insert((i.min(k), j, i.max(k)));
            });
            out
        };
        prop_assert_eq!(collect(&fs), collect(&sc));
    }

    /// Theorem 1 for arbitrary neighbour walks and arbitrary shifts.
    #[test]
    fn path_shift_invariance(p in neighbor_walk(3), dx in -5i32..5, dy in -5i32..5, dz in -5i32..5) {
        let dims = IVec3::splat(5);
        let shifted = p.shifted(IVec3::new(dx, dy, dz));
        prop_assert_eq!(
            single_path_chains(dims, &p),
            single_path_chains(dims, &shifted)
        );
    }

    /// Lemma 3/6 for arbitrary neighbour walks: the reflective twin exists,
    /// is origin-anchored, and generates the same chain set.
    #[test]
    fn reflective_twin_equivalence(p in neighbor_walk(4)) {
        let twin = p.reflective_twin();
        prop_assert_eq!(twin.offset(0), IVec3::ZERO);
        prop_assert_eq!(twin.sigma(), p.inverse().sigma());
        let dims = IVec3::splat(5);
        prop_assert_eq!(single_path_chains(dims, &p), single_path_chains(dims, &twin));
    }

    /// R-COLLAPSE is idempotent and never drops an equivalence class.
    #[test]
    fn r_collapse_idempotent(paths in proptest::collection::vec(neighbor_walk(3), 1..20)) {
        let pat = Pattern::new(paths);
        let once = r_collapse(&pat);
        let twice = r_collapse(&once);
        prop_assert_eq!(once.len(), twice.len());
        // Every original path still has an equivalent representative.
        for p in pat.iter() {
            prop_assert!(once.iter().any(|q| q.is_equivalent(p)));
        }
        // And no two retained paths are equivalent.
        for (i, p) in once.iter().enumerate() {
            for q in once.iter().skip(i + 1) {
                prop_assert!(!p.is_equivalent(q));
            }
        }
    }

    /// The distributed runtime reproduces serial forces for arbitrary atom
    /// configurations (2×2×2 ranks, soft pair potential).
    #[test]
    fn distributed_equals_serial_on_random_configs(
        coords in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 8..40)
    ) {
        use shift_collapse_md::geom::IVec3;
        use shift_collapse_md::md::{Method, Simulation};
        use shift_collapse_md::parallel::rank::ForceField;
        use shift_collapse_md::potential::LennardJones;

        let edge = 12.0;
        let bbox = SimulationBox::cubic(edge);
        let mut store = AtomStore::single_species();
        for (i, &(x, y, z)) in coords.iter().enumerate() {
            store.push(i as u64, Species::DEFAULT, Vec3::new(x * edge, y * edge, z * edge), Vec3::ZERO);
        }
        // Soft, short-ranged pair potential keeps forces finite under
        // arbitrary overlaps.
        let pot = LennardJones::new(1e-3, 0.2, 2.5);
        let mut serial = Simulation::builder(store.clone(), bbox)
            .pair_potential(Box::new(pot))
            .method(Method::ShiftCollapse)
            .build()
            .unwrap();
        let s_serial = serial.compute_forces();
        let ff = ForceField {
            pair: Some(Box::new(pot)),
            triplet: None,
            quadruplet: None,
            method: Method::ShiftCollapse,
        };
        let mut dist = shift_collapse_md::parallel::DistributedSim::new(
            store, bbox, IVec3::splat(2), ff, 0.001,
        ).unwrap();
        let e_d = dist.total_energy();
        prop_assert!((e_d - s_serial.energy.total()).abs()
            < 1e-9 * s_serial.energy.total().abs().max(1e-12));
        prop_assert_eq!(dist.tuple_counts().pair.accepted, s_serial.tuples.pair.accepted);
    }

    /// Newton's third law holds for cell-enumerated LJ forces on arbitrary
    /// configurations.
    #[test]
    fn momentum_conservation((store, bbox) in atoms_in_box()) {
        use shift_collapse_md::md::{Method, Simulation};
        use shift_collapse_md::potential::LennardJones;
        let mut sim = Simulation::builder(store, bbox)
            .pair_potential(Box::new(LennardJones::new(1.0, 0.4, 1.0)))
            .method(Method::ShiftCollapse)
            .build()
            .unwrap();
        sim.compute_forces();
        let scale = sim
            .store()
            .forces()
            .iter()
            .map(|f| f.norm())
            .fold(1.0f64, f64::max);
        prop_assert!(sim.store().net_force().norm() < 1e-9 * scale);
    }
}
