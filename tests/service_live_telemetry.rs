//! Acceptance test for the live telemetry plane: a real `scmd serve`
//! daemon child with a Prometheus listener, driven end to end by the
//! `scmd` client verbs while a job is in flight.
//!
//! Covers the contract the CI `service-smoke` job relies on:
//! `scmd watch` streams ≥ 3 snapshots that validate against the
//! checked-in `schema/metrics.schema.json`, the metrics endpoint
//! reports daemon gauges plus `job`-labeled per-job series mid-run,
//! `scmd dump` captures a valid Chrome trace from the running job, and
//! none of that observation perturbs the run — the watched/dumped job's
//! results stay byte-equal to a standalone `scmd run` of the same spec.

use shift_collapse_md::obs::json::Json;
use shift_collapse_md::obs::schema;
use shift_collapse_md::serve::{client, Request, Response};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn scmd() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_scmd"));
    c.stdout(Stdio::piped()).stderr(Stdio::piped());
    c
}

struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        let dir = std::env::temp_dir().join(format!("scmd-live-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        TestDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A daemon child that is SIGKILLed if a panic unwinds past it.
struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

/// Spawns `scmd serve --metrics-addr 127.0.0.1:0` and discovers the
/// kernel-assigned scrape address from the daemon's startup banner.
/// The stdout reader is returned alive: dropping the pipe would make a
/// later daemon `println!` fail on a closed fd.
fn spawn_daemon(socket: &Path, state: &Path) -> (DaemonGuard, BufReader<ChildStdout>, String) {
    let mut child = scmd()
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--state",
            state.to_str().unwrap(),
            "--lanes",
            "2",
            "--slice",
            "4",
            "--metrics-addr",
            "127.0.0.1:0",
        ])
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("daemon stdout is piped");
    let guard = DaemonGuard(child);
    let mut reader = BufReader::new(stdout);

    // `# metrics exposition on http://ADDR/metrics` is printed before the
    // accept loop starts, so this read cannot hang on a healthy daemon.
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("daemon stdout readable");
        assert!(n > 0, "daemon exited before announcing its metrics address");
        if let Some(rest) = line.trim().strip_prefix("# metrics exposition on http://") {
            break rest.trim_end_matches("/metrics").to_string();
        }
    };

    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if matches!(client::request(socket, &Request::Ping), Ok(Response::Pong { .. })) {
            return (guard, reader, addr);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("daemon did not come up on {}", socket.display());
}

/// A long-enough LJ run (serial, ~500 atoms) with per-job metrics on, so
/// the job is still in flight while we watch, scrape, and dump it.
fn live_spec(steps: u64) -> String {
    format!(
        r#"{{
            "schema": "sc-scenario/1",
            "name": "live-telemetry",
            "system": {{"kind": "lj", "cells": 5, "a": 1.5599, "temp": 1.0, "seed": 42}},
            "potential": {{"kind": "lj", "cutoff": 2.5}},
            "method": "sc",
            "executor": {{"kind": "serial"}},
            "dt": 0.002,
            "steps": {steps},
            "observability": {{"metrics": true}}
        }}"#
    )
}

fn job(socket: &Path, id: &str) -> Json {
    match client::request(socket, &Request::Status { id: Some(id.into()) }).unwrap() {
        Response::Status { jobs } => jobs.into_iter().next().expect("job exists"),
        other => panic!("unexpected response {}", other.to_json()),
    }
}

fn wait_for_state(socket: &Path, id: &str, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        if job(socket, id).get("state").and_then(|v| v.as_str()) == Some(want) {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("{id} never reached {want}; job: {}", job(socket, id));
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("scmd runs");
    assert!(
        out.status.success(),
        "scmd failed (status {:?}): {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// One plain-HTTP GET against the daemon's metrics listener.
fn scrape(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("metrics endpoint accepts");
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: scmd\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("metrics endpoint answers");
    assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "unexpected response head:\n{raw}");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a header/body split");
    assert!(
        head.contains("Content-Type: text/plain"),
        "exposition must be text/plain, got:\n{head}"
    );
    body.to_string()
}

#[test]
fn live_daemon_streams_watch_scrapes_metrics_and_dumps_without_perturbing_results() {
    let dir = TestDir::new("plane");
    let socket = dir.path("scmd.sock");
    let (_daemon, _daemon_stdout, addr) = spawn_daemon(&socket, &dir.path("state"));

    let spec_path = dir.path("live.json");
    std::fs::write(&spec_path, live_spec(4000)).unwrap();
    let id = run_ok(scmd().args([
        "submit",
        "--spec",
        spec_path.to_str().unwrap(),
        "--socket",
        socket.to_str().unwrap(),
    ]))
    .trim()
    .to_string();
    assert!(id.starts_with("job-"), "unexpected submit output {id:?}");

    // -- scmd watch: ≥ 3 schema-valid snapshots from the in-flight job --
    let watch_out = run_ok(scmd().args([
        "watch",
        &id,
        "--count",
        "3",
        "--json",
        "true",
        "--socket",
        socket.to_str().unwrap(),
    ]));
    let metrics_schema = {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/schema/metrics.schema.json");
        Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap()
    };
    let mut snapshots = 0u64;
    let mut last_step = 0.0f64;
    for (i, line) in watch_out.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let resp = Json::parse(line).unwrap_or_else(|e| panic!("watch line {i} is not JSON: {e}"));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "rejected: {line}");
        if resp.get("verb").and_then(Json::as_str) != Some("telemetry") {
            continue;
        }
        let doc = resp.get("telemetry").expect("telemetry responses carry the document");
        schema::validate(doc, &metrics_schema)
            .unwrap_or_else(|e| panic!("snapshot {i} violates metrics schema: {e}"));
        let step = doc.get("step").and_then(|v| v.as_f64()).unwrap();
        assert!(step > last_step, "snapshots must advance monotonically");
        last_step = step;
        snapshots += 1;
    }
    assert!(snapshots >= 3, "expected ≥ 3 telemetry snapshots, got {snapshots}:\n{watch_out}");
    assert!(last_step < 4000.0, "the watched job must still be in flight");

    // Live wall time: a running job's status already accumulates wall_ms.
    let status = job(&socket, &id);
    assert_eq!(status.get("state").and_then(|v| v.as_str()), Some("running"));
    let wall_ms = status.get("wall_ms").and_then(|v| v.as_f64()).unwrap();
    assert!(wall_ms > 0.0, "a running job reports live wall time, got {wall_ms}");

    // -- Prometheus endpoint mid-run: daemon gauges + job-labeled series --
    let body = scrape(&addr);
    for needle in [
        "scmd_build_info{version=\"",
        "# TYPE serve_jobs_submitted_total counter",
        "serve_jobs_submitted_total 1",
        "serve_lanes_total 2",
        "# TYPE serve_queue_depth gauge",
        "serve_slice_duration_ms_bucket{",
    ] {
        assert!(body.contains(needle), "scrape is missing {needle:?}:\n{body}");
    }
    let job_series = format!("sim_steps{{job=\"{id}\",tenant=\"live-telemetry\"}}");
    assert!(body.contains(&job_series), "scrape is missing {job_series:?}:\n{body}");

    // -- scmd dump: a valid Chrome trace captured from the running job --
    let trace_path = dir.path("live-trace.json");
    let dump_out = run_ok(scmd().args([
        "dump",
        &id,
        "--out",
        trace_path.to_str().unwrap(),
        "--socket",
        socket.to_str().unwrap(),
    ]));
    assert!(dump_out.contains("flight recorder"), "unexpected dump output: {dump_out}");
    let trace = Json::parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    let rows = trace.get("traceEvents").and_then(Json::as_array).expect("Chrome trace document");
    let events: Vec<&Json> =
        rows.iter().filter(|r| r.get("ph").and_then(Json::as_str) != Some("M")).collect();
    assert!(!events.is_empty(), "an armed flight ring must have captured events");
    for row in &events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(row.get(key).is_some(), "trace row missing '{key}': {row}");
        }
        let step = row.get("args").and_then(|a| a.get("step")).and_then(|v| v.as_f64()).unwrap();
        assert!(step <= 4000.0, "event outside the run's step window: {row}");
    }

    // -- Observation changed nothing: byte-equal to a standalone run --
    wait_for_state(&socket, &id, "done");
    let served = dir.path("served.json");
    run_ok(scmd().args([
        "results",
        "--id",
        &id,
        "--socket",
        socket.to_str().unwrap(),
        "--out",
        served.to_str().unwrap(),
    ]));
    let standalone = dir.path("standalone.json");
    run_ok(scmd().args([
        "run",
        "--spec",
        spec_path.to_str().unwrap(),
        "--results",
        standalone.to_str().unwrap(),
    ]));
    let (a, b) = (std::fs::read(&served).unwrap(), std::fs::read(&standalone).unwrap());
    assert!(!a.is_empty() && a == b, "watched/dumped results drifted from the standalone run");

    run_ok(scmd().args(["shutdown", "--socket", socket.to_str().unwrap()]));
}

/// The `Metrics` verb over the Unix socket mirrors the TCP exposition,
/// and `scmd metrics` renders it; dump/watch against unknown or
/// untraceable jobs answer with the typed error codes.
#[test]
fn metrics_verb_matches_endpoint_and_typed_errors_reach_the_cli() {
    let dir = TestDir::new("verbs");
    let socket = dir.path("scmd.sock");
    let (_daemon, _daemon_stdout, addr) = spawn_daemon(&socket, &dir.path("state"));

    let text = run_ok(scmd().args(["metrics", "--socket", socket.to_str().unwrap()]));
    let body = scrape(&addr);
    for out in [&text, &body] {
        assert!(out.contains("scmd_build_info{version=\""), "missing build info:\n{out}");
        assert!(out.contains("serve_jobs_submitted_total 0"), "fresh daemon scrape:\n{out}");
    }

    // Unknown job: both streaming and request/response verbs refuse.
    let watch =
        scmd().args(["watch", "job-99", "--socket", socket.to_str().unwrap()]).output().unwrap();
    assert!(!watch.status.success());
    assert!(
        String::from_utf8_lossy(&watch.stderr).contains("unknown-job"),
        "watch stderr: {}",
        String::from_utf8_lossy(&watch.stderr)
    );
    let dump =
        scmd().args(["dump", "job-99", "--socket", socket.to_str().unwrap()]).output().unwrap();
    assert!(!dump.status.success());
    assert!(
        String::from_utf8_lossy(&dump.stderr).contains("unknown-job"),
        "dump stderr: {}",
        String::from_utf8_lossy(&dump.stderr)
    );

    run_ok(scmd().args(["shutdown", "--socket", socket.to_str().unwrap()]));
}
