//! Cross-crate end-to-end tests: the full pipeline from pattern algebra
//! through serial MD to the distributed runtime, exercised through the
//! umbrella crate's public API exactly as a downstream user would.

use shift_collapse_md::geom::IVec3;
use shift_collapse_md::md::Method;
use shift_collapse_md::parallel::rank::ForceField;
use shift_collapse_md::prelude::*;

#[test]
fn silica_pipeline_end_to_end() {
    // The paper's benchmark app: pair + triplet silica, 20 NVE steps.
    let v = Vashishta::silica();
    let (store, bbox) = build_silica_like(3, 7.16, v.params().masses, 0.01, 99);
    let mut sim = Simulation::builder(store, bbox)
        .pair_potential(Box::new(v.pair.clone()))
        .triplet_potential(Box::new(v.triplet.clone()))
        .method(Method::ShiftCollapse)
        .timestep(0.0005)
        .build()
        .unwrap();
    let e0 = sim.total_energy();
    sim.run(20);
    let e1 = sim.total_energy();
    assert!(((e1 - e0) / e0.abs()).abs() < 5e-4, "silica NVE drift over 20 steps: {e0} → {e1}");
    // Both tuple orders are being computed dynamically.
    let t = sim.telemetry().tuples;
    assert!(t.pair.accepted > 0 && t.triplet.accepted > 0);
    // Momentum conservation through many-body forces.
    assert!(sim.store().net_force().norm() < 1e-7);
}

#[test]
fn serial_and_distributed_silica_agree_through_time() {
    let v = Vashishta::silica();
    let (store, bbox) = build_silica_like(4, 7.16, v.params().masses, 0.01, 5);
    let mut serial = Simulation::builder(store.clone(), bbox)
        .pair_potential(Box::new(v.pair.clone()))
        .triplet_potential(Box::new(v.triplet.clone()))
        .method(Method::ShiftCollapse)
        .timestep(0.0005)
        .build()
        .unwrap();
    let ff = ForceField {
        pair: Some(Box::new(v.pair.clone())),
        triplet: Some(Box::new(v.triplet.clone())),
        quadruplet: None,
        method: Method::ShiftCollapse,
    };
    let mut dist = DistributedSim::new(store, bbox, IVec3::new(2, 2, 1), ff, 0.0005).unwrap();
    serial.run(5);
    dist.run(5);
    let gathered = dist.gather();
    // The serial engine re-sorts atoms into Morton order as it runs; compare
    // through the id → slot indirection rather than assuming slot == id.
    let mut snapshot = serial.store().clone();
    snapshot.sort_by_id();
    let sp = snapshot.positions();
    for (i, (&id, &r)) in gathered.ids().iter().zip(gathered.positions()).enumerate() {
        assert_eq!(id, i as u64);
        assert_eq!(snapshot.ids()[i], id);
        let dr = bbox.min_image(r, sp[i]).norm();
        assert!(dr < 1e-6, "atom {i} drifted {dr} between serial and distributed");
    }
}

#[test]
fn every_method_finds_the_same_physics_with_all_terms() {
    // LJ + SW-triplet + torsion on one system: n = 2, 3, 4 all active.
    let torsion = TorsionToy::new(0.02, 1.0, 0.3);
    let mut energies = vec![];
    for method in Method::ALL {
        let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(6, 1.2), 0.05, 21);
        let mut sim = Simulation::builder(store, bbox)
            .pair_potential(Box::new(LennardJones::reduced(1.2)))
            .triplet_potential(Box::new(ScaledSw::new(0.9)))
            .quadruplet_potential(Box::new(torsion))
            .method(method)
            .build()
            .unwrap();
        let st = sim.compute_forces();
        assert!(st.tuples.triplet.accepted > 0, "{}", method.name());
        assert!(st.tuples.quadruplet.accepted > 0, "{}", method.name());
        energies.push((st.energy.pair, st.energy.triplet, st.energy.quadruplet));
    }
    for e in &energies[1..] {
        assert!((e.0 - energies[0].0).abs() < 1e-8 * energies[0].0.abs().max(1.0));
        assert!((e.1 - energies[0].1).abs() < 1e-8 * energies[0].1.abs().max(1.0));
        assert!((e.2 - energies[0].2).abs() < 1e-8 * energies[0].2.abs().max(1.0));
    }
}

/// A Stillinger-Weber triplet term rescaled to a shorter cutoff so it fits
/// the reduced-unit LJ test box (the SW cutoff itself is 3.77 Å).
struct ScaledSw {
    inner: StillingerWeber,
    scale: f64,
}

impl ScaledSw {
    fn new(rcut: f64) -> Self {
        let mut inner = StillingerWeber::silicon();
        // Shrink σ so a·σ = rcut.
        let scale = rcut / (inner.a * inner.sigma);
        inner.sigma *= scale;
        ScaledSw { inner, scale }
    }
}

impl shift_collapse_md::potential::TripletPotential for ScaledSw {
    fn cutoff(&self) -> f64 {
        self.inner.a * self.inner.sigma
    }
    fn eval(
        &self,
        s0: Species,
        s1: Species,
        s2: Species,
        d10: shift_collapse_md::geom::Vec3,
        d12: shift_collapse_md::geom::Vec3,
    ) -> (
        f64,
        shift_collapse_md::geom::Vec3,
        shift_collapse_md::geom::Vec3,
        shift_collapse_md::geom::Vec3,
    ) {
        let _ = self.scale;
        shift_collapse_md::potential::TripletPotential::eval(&self.inner, s0, s1, s2, d10, d12)
    }
}

#[test]
fn tabulated_silica_pair_term_matches_analytic() {
    // Swap the Vashishta 2-body term for its cubic-Hermite table: energies
    // and trajectories must agree to interpolation accuracy.
    let v = Vashishta::silica();
    let masses = v.params().masses;
    let (store, bbox) = build_silica_like(3, 7.16, masses, 0.01, 31);
    let tab = TabulatedPair::from_potential(&v.pair, 2, 1.0, 8000);
    let mut analytic = Simulation::builder(store.clone(), bbox)
        .pair_potential(Box::new(v.pair.clone()))
        .triplet_potential(Box::new(v.triplet.clone()))
        .timestep(0.0005)
        .build()
        .unwrap();
    let mut tabulated = Simulation::builder(store, bbox)
        .pair_potential(Box::new(tab))
        .triplet_potential(Box::new(v.triplet.clone()))
        .timestep(0.0005)
        .build()
        .unwrap();
    let ea = analytic.compute_forces().energy.pair;
    let et = tabulated.compute_forces().energy.pair;
    assert!(((ea - et) / ea).abs() < 1e-6, "tabulated pair energy {et} vs analytic {ea}");
    analytic.run(5);
    tabulated.run(5);
    for (a, b) in analytic.store().positions().iter().zip(tabulated.store().positions()) {
        assert!(bbox.min_image(*a, *b).norm() < 1e-5);
    }
    // The table conserves its own energy as well as the analytic form.
    let e0 = tabulated.total_energy();
    tabulated.run(20);
    let e1 = tabulated.total_energy();
    assert!(((e1 - e0) / e0.abs()).abs() < 5e-4, "tabulated NVE drift {e0} → {e1}");
}

#[test]
fn xyz_roundtrip_through_simulation() {
    use shift_collapse_md::md::{read_xyz, write_xyz};
    let (mut store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(4, 1.6), 0.0, 3);
    shift_collapse_md::md::thermalize(&mut store, 1.2, 7);
    let mut buf = Vec::new();
    write_xyz(&mut buf, &store, &bbox, "t=0").unwrap();
    let (back, bbox2) = read_xyz(&mut std::io::BufReader::new(buf.as_slice()), vec![1.0]).unwrap();
    assert_eq!(back.len(), store.len());
    assert!((back.temperature() - store.temperature()).abs() < 1e-9);
    assert_eq!(bbox2.lengths(), bbox.lengths());
}

#[test]
fn pattern_theory_matches_construction_through_public_api() {
    use shift_collapse_md::pattern::theory;
    for n in 2..=4 {
        assert_eq!(generate_fs(n).len() as u64, theory::fs_path_count(n));
        assert_eq!(shift_collapse(n).len() as u64, theory::sc_path_count(n));
    }
    assert_eq!(half_shell().len(), 14);
    assert_eq!(eighth_shell().import_offsets().len(), 7);
}

/// Long NVE stability soak — run explicitly with
/// `cargo test --release -- --ignored long_nve`.
#[test]
#[ignore = "soak test: ~minutes in release"]
fn long_nve_silica_stability() {
    let v = Vashishta::silica();
    let (store, bbox) = build_silica_like(3, 7.16, v.params().masses, 0.01, 17);
    let mut sim = Simulation::builder(store, bbox)
        .pair_potential(Box::new(v.pair.clone()))
        .triplet_potential(Box::new(v.triplet.clone()))
        .timestep(0.0005)
        .build()
        .unwrap();
    let e0 = sim.total_energy();
    sim.run(2000);
    let e1 = sim.total_energy();
    assert!(((e1 - e0) / e0.abs()).abs() < 5e-3, "2000-step NVE drift: {e0} → {e1}");
}

/// Distributed soak: hot LJ gas on 8 ranks for many steps — migration,
/// ghost exchange, and reduction under sustained churn.
#[test]
#[ignore = "soak test: ~minutes in release"]
fn long_distributed_soak() {
    let (mut store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(7, 1.5599), 1.0, 42);
    shift_collapse_md::md::thermalize(&mut store, 2.0, 9);
    let n0 = store.len();
    let ff = ForceField {
        pair: Some(Box::new(LennardJones::reduced(2.5))),
        triplet: None,
        quadruplet: None,
        method: Method::ShiftCollapse,
    };
    let mut d = DistributedSim::new(store, bbox, IVec3::splat(2), ff, 0.001).unwrap();
    let e0 = d.total_energy();
    d.run(500);
    let e1 = d.total_energy();
    assert_eq!(d.gather().len(), n0);
    assert!(((e1 - e0) / e0.abs()).abs() < 5e-3, "distributed drift {e0} → {e1}");
    assert!(d.comm_stats().atoms_migrated > 100, "hot gas must migrate plenty");
}

#[test]
fn cost_model_reproduces_figure_shapes() {
    use shift_collapse_md::netmodel::SilicaWorkload;
    for machine in [MachineProfile::xeon(), MachineProfile::bgq()] {
        let model = MdCostModel::new(SilicaWorkload::silica(), machine);
        // SC wins at the paper's finest grain…
        let sc = model.step_time(Method::ShiftCollapse, 24.0).total_s();
        let hy = model.step_time(Method::Hybrid, 24.0).total_s();
        assert!(hy / sc > 2.0);
        // …and Hybrid takes over at coarse grain.
        let x = model
            .crossover(Method::ShiftCollapse, Method::Hybrid, 24.0, 1e6)
            .expect("crossover exists");
        assert!(x > 100.0);
    }
}
