//! CI contract test: `scmd run --metrics-json` must emit telemetry JSON
//! lines that validate against the checked-in `schema/metrics.schema.json`.
//! This is what pins the layout for external dashboards — any field rename
//! or removal fails here before it ships.

use shift_collapse_md::obs::json::Json;
use shift_collapse_md::obs::schema;
use std::process::Command;

fn load_schema() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/schema/metrics.schema.json");
    let text = std::fs::read_to_string(path).expect("schema file is checked in");
    Json::parse(&text).expect("schema file is valid JSON")
}

#[test]
fn scmd_metrics_json_matches_the_checked_in_schema() {
    let dir = std::env::temp_dir().join(format!("scmd-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("metrics.jsonl");

    // Tiny workload: 5³ LJ cells (the smallest box spanning 3 pair
    // cutoffs), 10 steps — fast enough for every CI run.
    let output = Command::new(env!("CARGO_BIN_EXE_scmd"))
        .args([
            "run",
            "--system",
            "lj",
            "--cells",
            "5",
            "--steps",
            "10",
            "--metrics-json",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("scmd runs");
    assert!(output.status.success(), "scmd failed: {}", String::from_utf8_lossy(&output.stderr));

    let schema = load_schema();
    let text = std::fs::read_to_string(&out_path).expect("metrics file was written");
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    // One line per report block (10 steps → 10 blocks of 1) plus the final
    // snapshot.
    assert!(lines.len() >= 2, "expected several telemetry lines, got {}", lines.len());
    for (i, line) in lines.iter().enumerate() {
        let value = Json::parse(line).unwrap_or_else(|e| panic!("line {i} is not JSON: {e}"));
        schema::validate(&value, &schema)
            .unwrap_or_else(|e| panic!("line {i} violates metrics schema: {e}"));
    }

    // The final snapshot reflects the full run.
    let last = Json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(last.get("step").and_then(|v| v.as_f64()), Some(10.0));
    let accepted = last
        .get("tuples")
        .and_then(|t| t.get("pair"))
        .and_then(|p| p.get("accepted"))
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(accepted > 0.0, "a real workload accepts pair tuples");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schema_rejects_documents_missing_pinned_sections() {
    let schema = load_schema();
    // Drop `phases` from an otherwise plausible document: must fail.
    let doc = Json::parse(
        r#"{"step": 1, "energy": {"pair": 0, "triplet": 0, "quadruplet": 0, "total": 0},
            "virial": 0, "tuples": {"pair": {"candidates": 1, "accepted": 1},
            "triplet": {"candidates": 0, "accepted": 0},
            "quadruplet": {"candidates": 0, "accepted": 0}},
            "total_phases": {}, "comm": {}, "per_rank": [], "alloc_events": 0}"#,
    )
    .unwrap();
    let err = schema::validate(&doc, &schema).unwrap_err();
    assert!(err.contains("phases"), "{err}");
}
