//! Physical observables over the SC tuple machinery: melt an LJ crystal and
//! watch the radial distribution function lose its crystalline peaks while
//! the mean-squared displacement turns diffusive — plus a tabulated
//! potential driving the same trajectory at table-lookup cost.
//!
//! Run: `cargo run --release --example observables`

use shift_collapse_md::md::Method;
use shift_collapse_md::prelude::*;

fn main() {
    let lj = LennardJones::reduced(2.5);
    let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(6, 1.5599), 0.1, 42);
    println!("melting a {}-atom LJ crystal (T* target 1.8)", store.len());

    let mut sim = Simulation::builder(store, bbox)
        .pair_potential(Box::new(lj))
        .method(Method::ShiftCollapse)
        .timestep(0.002)
        .thermostat(1.8, 0.05)
        .build()
        .expect("valid simulation");

    let mut rdf_cold = RadialDistribution::new(2.5, 60);
    rdf_cold.accumulate(sim.store(), sim.bbox());
    let mut msd = MeanSquaredDisplacement::new(sim.store());

    for block in 0..6 {
        sim.run(150);
        msd.record(sim.store(), sim.bbox());
        println!(
            "step {:>4}: T* = {:.3}  P* = {:+.3}  MSD = {:.3}",
            (block + 1) * 150,
            sim.store().temperature(),
            pair_virial_pressure(sim.store(), sim.bbox(), &LennardJones::reduced(2.5)),
            msd.value(),
        );
    }

    let mut rdf_hot = RadialDistribution::new(2.5, 60);
    rdf_hot.accumulate(sim.store(), sim.bbox());

    let peak = |rdf: &RadialDistribution| {
        rdf.normalized().into_iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap()
    };
    let (rc, gc) = peak(&rdf_cold);
    let (rh, gh) = peak(&rdf_hot);
    println!();
    println!("g(r) peak, crystal: g({rc:.2}) = {gc:.1}   melt: g({rh:.2}) = {gh:.1}");
    println!("(the crystal's δ-like nearest-neighbour peak collapses into a liquid shell)");

    // Tabulated potential: same physics from a cubic-Hermite table.
    let tab = TabulatedPair::from_potential(&LennardJones::reduced(2.5), 1, 0.7, 4000);
    let (store2, bbox2) = build_fcc_lattice(&LatticeSpec::cubic(6, 1.5599), 0.1, 42);
    let mut tab_sim = Simulation::builder(store2, bbox2)
        .pair_potential(Box::new(tab))
        .method(Method::ShiftCollapse)
        .timestep(0.002)
        .build()
        .expect("valid simulation");
    let e_tab = tab_sim.total_energy();
    let (store3, bbox3) = build_fcc_lattice(&LatticeSpec::cubic(6, 1.5599), 0.1, 42);
    let mut ana_sim = Simulation::builder(store3, bbox3)
        .pair_potential(Box::new(LennardJones::reduced(2.5)))
        .method(Method::ShiftCollapse)
        .timestep(0.002)
        .build()
        .expect("valid simulation");
    let e_ana = ana_sim.total_energy();
    println!();
    println!(
        "tabulated vs analytic LJ total energy: {e_tab:.6} vs {e_ana:.6} (Δrel = {:.1e})",
        ((e_tab - e_ana) / e_ana).abs()
    );
}
