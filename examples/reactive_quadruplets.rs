//! Dynamic n = 4 tuple computation: the regime that motivates the paper
//! (reactive force fields evaluate explicit 4-body torsions over
//! dynamically discovered bonded chains, §1). A torsion-like quadruplet
//! potential runs on top of a Lennard-Jones liquid, with the SC(4) pattern
//! doing the chain search — 9 855 paths instead of full shell's 19 683
//! (Eq. 29), with the same force set.
//!
//! Run: `cargo run --release --example reactive_quadruplets`

use shift_collapse_md::md::Method;
use shift_collapse_md::pattern::theory;
use shift_collapse_md::prelude::*;

fn main() {
    println!(
        "SC(4): {} paths vs FS(4): {} paths (ratio {:.3})",
        theory::sc_path_count(4),
        theory::fs_path_count(4),
        theory::fs_over_sc_ratio(4)
    );
    let torsion = TorsionToy::new(0.05, 1.0, 0.3);
    let mut results = vec![];
    for method in Method::ALL {
        let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(5, 1.2), 0.05, 13);
        let mut sim = Simulation::builder(store, bbox)
            .pair_potential(Box::new(LennardJones::reduced(1.2)))
            .quadruplet_potential(Box::new(torsion))
            .method(method)
            .timestep(0.001)
            .build()
            .expect("valid simulation");
        let stats = sim.compute_forces();
        println!(
            "{:<10} E4 = {:>9.4} | quad chains found: {:>7} (searched {:>9} candidates)",
            method.name(),
            stats.energy.quadruplet,
            stats.tuples.quadruplet.accepted,
            stats.tuples.quadruplet.candidates,
        );
        results.push((stats.energy.quadruplet, stats.tuples.quadruplet.accepted));
        sim.run(10);
    }
    let (e0, n0) = results[0];
    assert!(results.iter().all(|&(e, n)| (e - e0).abs() < 1e-8 && n == n0));
    println!();
    println!("identical 4-body energies and chain counts under all three methods —");
    println!("the SC pattern finds every bonded chain exactly once (Theorem 2).");
}
