//! A tour of the computation-pattern algebra: build the paper's patterns,
//! inspect their sizes, footprints, and import volumes, and verify the
//! invariances of §3 by direct computation.
//!
//! Run: `cargo run --release --example pattern_explorer`

use shift_collapse_md::geom::IVec3;
use shift_collapse_md::pattern::ucp::{single_path_chains, ucp_chains};
use shift_collapse_md::pattern::{
    chain_complete, coverage_ascii, coverage_summary, eighth_shell, full_shell, generate_fs,
    half_shell, import_volume_cubic, shift_collapse, theory, Path,
};

fn main() {
    println!("== Cell coverage, drawn (the paper's Figs. 5–6) ==");
    for (name, pat) in [
        ("full shell (n = 2)", full_shell()),
        ("eighth shell / SC(2)", eighth_shell()),
        ("SC(3)", shift_collapse(3)),
    ] {
        println!("--- {name}: {}", coverage_summary(&pat));
        print!("{}", coverage_ascii(&pat));
    }

    println!("== The shift-collapse pipeline (n = 3) ==");
    let fs = generate_fs(3);
    let sc = shift_collapse(3);
    println!("GENERATE-FS(3): {} paths (27² = {})", fs.len(), theory::fs_path_count(3));
    println!(
        "SC(3):          {} paths  —  Eq. 29: (27² + 27)/2 = {}",
        sc.len(),
        theory::sc_path_count(3)
    );
    println!(
        "footprints: FS = {}, SC = {} (first octant [0,2]³ = 27)",
        fs.footprint(),
        sc.footprint()
    );
    println!(
        "import volume, 4³-cell domain: FS = {}, SC = {} (Eq. 33: 6³−4³ = {})",
        import_volume_cubic(4, &fs),
        import_volume_cubic(4, &sc),
        theory::sc_import_volume(4, 3)
    );

    println!();
    println!("== Classical pair methods as patterns (§4.3) ==");
    for (name, p) in [
        ("full shell", full_shell()),
        ("half shell", half_shell()),
        ("eighth shell", eighth_shell()),
    ] {
        println!(
            "{name:>13}: |Ψ| = {:>2}, single-cell imports = {:>2}",
            p.len(),
            import_volume_cubic(1, &p)
        );
    }

    println!();
    println!("== Theorem 1: path-shift invariance, computed ==");
    let p = Path::new(vec![IVec3::new(0, 0, 0), IVec3::new(1, 0, 0), IVec3::new(1, 1, 0)]);
    let shifted = p.shifted(IVec3::new(-3, 5, 2));
    let dims = IVec3::splat(4);
    let same = single_path_chains(dims, &p) == single_path_chains(dims, &shifted);
    println!("UCP(Ω, {{p}}) == UCP(Ω, {{p + Δ}}) on a 4³ domain: {same}");

    println!();
    println!("== Lemma 3: reflective twins generate the same force set ==");
    let twin = p.reflective_twin();
    println!("p    = {p}");
    println!("RPT  = {twin}");
    println!(
        "identical chain sets: {}",
        single_path_chains(dims, &p) == single_path_chains(dims, &twin)
    );

    println!();
    println!("== Theorem 2: completeness of SC, by exhaustion ==");
    for n in 2..=4 {
        let pat = shift_collapse(n);
        let dims = IVec3::splat((n as i32).max(4));
        println!(
            "SC({n}) generates every nearest-neighbour {n}-chain on a {dims} lattice: {}",
            chain_complete(dims, &pat)
        );
    }

    println!();
    println!("== FS and SC force sets coincide (redundancy only) ==");
    let a = ucp_chains(IVec3::splat(4), &generate_fs(2));
    let b = ucp_chains(IVec3::splat(4), &shift_collapse(2));
    println!("pair chain sets equal on 4³: {} ({} chains)", a == b, a.len());
}
