//! The paper's benchmark application: silica MD with pair + triplet
//! dynamic tuple computation (`r_cut3/r_cut2 ≈ 0.47`), run under all three
//! methods — SC-MD, FS-MD, and the production-style Hybrid-MD — which must
//! agree on the physics while searching very different tuple spaces.
//!
//! Run: `cargo run --release --example silica`

use shift_collapse_md::md::Method;
use shift_collapse_md::prelude::*;

fn main() {
    let v = Vashishta::silica();
    println!(
        "Vashishta-form silica: rcut2 = {} Å, rcut3 = {} Å (ratio {:.3})",
        v.params().rcut2,
        v.params().rcut3,
        v.params().rcut3 / v.params().rcut2
    );
    let masses = v.params().masses;

    for method in Method::ALL {
        let (store, bbox) = build_silica_like(3, 7.16, masses, 0.02, 7);
        let n = store.len();
        let mut sim = Simulation::builder(store, bbox)
            .pair_potential(Box::new(v.pair.clone()))
            .triplet_potential(Box::new(v.triplet.clone()))
            .method(method)
            .timestep(0.0005)
            .thermostat(0.03, 0.05)
            .build()
            .expect("valid silica simulation");
        let t0 = std::time::Instant::now();
        let stats = sim.run(20);
        let elapsed = t0.elapsed().as_secs_f64() / 20.0;
        println!(
            "{:<10} {n} atoms | E2 = {:>9.2}  E3 = {:>7.2} | pair cands {:>9}  triplet cands {:>9} | {:.2} ms/step",
            method.name(),
            stats.energy.pair,
            stats.energy.triplet,
            stats.tuples.pair.candidates,
            stats.tuples.triplet.candidates,
            elapsed * 1e3,
        );
    }
    println!();
    println!("All three methods compute identical forces; SC-MD searches ~half of");
    println!("FS-MD's triplet candidates (Eq. 29) while Hybrid-MD prunes triplets");
    println!("from its Verlet pair list, trading import volume for search cost (§5).");
}
