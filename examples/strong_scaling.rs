//! Distributed MD on the in-process message-passing runtime, plus the
//! calibrated machine model's strong-scaling projection — the workflow
//! behind Fig. 9.
//!
//! Run: `cargo run --release --example strong_scaling`

use shift_collapse_md::geom::IVec3;
use shift_collapse_md::md::Method;
use shift_collapse_md::parallel::rank::ForceField;
use shift_collapse_md::prelude::*;

fn main() {
    // Part 1: a real distributed run on 8 in-process ranks — every ghost
    // atom, halo message, and force reduction actually happens.
    let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(7, 1.5599), 0.3, 42);
    println!("== 8-rank distributed LJ run (in-process message passing) ==");
    for method in [Method::ShiftCollapse, Method::FullShell] {
        let ff = ForceField {
            pair: Some(Box::new(LennardJones::reduced(2.5))),
            triplet: None,
            quadruplet: None,
            method,
        };
        let mut sim = DistributedSim::new(store.clone(), bbox, IVec3::splat(2), ff, 0.002)
            .expect("valid decomposition");
        sim.run(10);
        let stats = sim.comm_stats();
        println!(
            "{:<10} E_pot = {:>10.3} | {:>6} messages, {:>9} bytes, {:>6} ghosts/step-cycle",
            method.name(),
            sim.potential_energy(),
            stats.messages,
            stats.bytes,
            stats.ghosts_imported / 21, // 2 exchange cycles per step + priming
        );
    }

    // Part 2: project the paper's strong-scaling experiment with the
    // calibrated machine model.
    println!();
    println!("== Modeled strong scaling, 0.88M-atom silica on the Xeon profile ==");
    let model = MdCostModel::new(
        shift_collapse_md::netmodel::SilicaWorkload::silica(),
        MachineProfile::xeon(),
    );
    let cores = [12, 48, 192, 768];
    println!("{:>6} {:>10} {:>10} {:>10}", "cores", "SC eff", "FS eff", "Hybrid eff");
    let curves: Vec<_> =
        Method::ALL.iter().map(|&m| model.strong_scaling(m, 0.88e6, &cores, 12)).collect();
    for (i, &p) in cores.iter().enumerate() {
        println!(
            "{:>6} {:>9.1}% {:>9.1}% {:>9.1}%",
            p,
            curves[0][i].efficiency * 100.0,
            curves[1][i].efficiency * 100.0,
            curves[2][i].efficiency * 100.0
        );
    }
    println!();
    println!("paper (Fig. 9a) at 768 cores: SC 92.6%, FS 38.3%, Hybrid 26.8%");
}
