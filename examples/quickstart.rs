//! Quickstart: a Lennard-Jones liquid integrated with the shift-collapse
//! pattern.
//!
//! Run: `cargo run --release --example quickstart`

use shift_collapse_md::prelude::*;

fn main() {
    // 6³ FCC unit cells of reduced-unit argon (864 atoms) with a little
    // thermal noise.
    let spec = LatticeSpec::cubic(6, 1.5599);
    let (store, bbox) = build_fcc_lattice(&spec, 0.5, 42);
    println!("Lennard-Jones liquid: {} atoms in a {:.2}³ box", store.len(), bbox.lengths().x);

    let mut sim = Simulation::builder(store, bbox)
        .pair_potential(Box::new(LennardJones::reduced(2.5)))
        .method(Method::ShiftCollapse)
        .timestep(0.002)
        .build()
        .expect("valid simulation");

    let e0 = sim.total_energy();
    println!("initial total energy: {e0:.4}");
    for block in 0..5 {
        let stats = sim.run(100);
        println!(
            "step {:>4}: E_pot = {:>10.4}  T = {:.4}  pair tuples = {} (of {} candidates)",
            (block + 1) * 100,
            stats.energy.pair,
            sim.store().temperature(),
            stats.tuples.pair.accepted,
            stats.tuples.pair.candidates,
        );
    }
    let e1 = sim.total_energy();
    println!("final total energy:   {e1:.4}");
    println!("relative NVE drift:   {:.2e}", ((e1 - e0) / e0).abs());

    // The SC pattern searched ~half the candidates a full-shell sweep would:
    let sc = sim.telemetry().tuples.pair.candidates;
    let mut fs_sim = {
        let (store, bbox) = build_fcc_lattice(&spec, 0.5, 42);
        Simulation::builder(store, bbox)
            .pair_potential(Box::new(LennardJones::reduced(2.5)))
            .method(Method::FullShell)
            .build()
            .unwrap()
    };
    let fs = fs_sim.compute_forces().tuples.pair.candidates;
    println!("search-space ratio FS/SC = {:.2} (theory: 27/14 ≈ 1.93)", fs as f64 / sc as f64);
}
